"""Vectorised floating-random-walk engine.

Executes batches of walks whose randomness comes entirely from per-walk
counter streams, so the results of a walk depend only on ``(seed, uid)`` —
never on batching, ordering, or the number of threads.  This is the property
Alg. 2 builds on.

Walk recipe (Sec. II-B):

1. *Launch* (step 0): sample a point uniformly on the master's Gaussian
   surface (3 uniforms: patch + 2 in-patch coordinates).
2. *First hop* (step 1): the transition cube is the largest cube centred at
   the point that avoids all conductors, dielectric interfaces, the domain
   walls, and the ``h_cap`` clamp.  The hop samples the cube's surface
   kernel and sets the walk weight

       omega = -A_G * eps0 * eps_r(r) * sign * grad_ratio / (2 h),

   the Monte-Carlo sample of Gauss's law (Eq. 2) with the centre-gradient
   kernel along the patch normal.
3. *Hops* (steps >= 2): transition cubes sampled from the surface kernel,
   weight unchanged.  A walk closer to a dielectric interface than
   ``interface_snap_fraction`` of its free space snaps onto the interface
   and takes the exact two-medium hemisphere step instead (this also caps
   the first-hop weight, keeping its variance finite near interfaces).
4. *Absorption*: within ``absorb_tol`` (Chebyshev) of a conductor, the walk
   ends there; within ``absorb_tol`` of the domain wall it ends on the
   enclosure conductor.  The walk's sample is ``x_ij = omega * [dest = j]``.

The engine core is :class:`WalkPipeline`, a *refill-capable* vector loop:
walks carry their own step counters, so the active set may mix walks from
several batches at different depths.  When walks absorb, their vector slots
are refilled with UIDs from subsequent batches instead of letting the active
set shrink to a ragged tail — the vector width stays near the batch size for
the whole run, which amortises the per-step fixed costs (index queries, mask
bookkeeping) over full-width arrays.  Completed-walk results are banked per
batch, so checkpoint consumers still see exactly the batch's UID set, in UID
order, bit-identical to unpipelined execution (per-walk arithmetic is
elementwise and draws are keyed by ``(uid, step)``, so co-scheduling never
changes a walk's numbers).

:func:`run_walks` — the historical batch API — is a thin wrapper running a
single batch through the pipeline with refilling disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConvergenceError
from ..greens.sphere import interface_hemisphere_direction
from .context import ExtractionContext


@dataclass
class WalkResults:
    """Per-walk outcomes of an engine run (aligned with the input uids)."""

    uids: np.ndarray  # (n,) uint64
    omega: np.ndarray  # (n,) float64 first-hop weights
    dest: np.ndarray  # (n,) int64 absorbing conductor indices
    steps: np.ndarray  # (n,) int64 hops taken (incl. launch)
    truncated: int  # walks cut by the step cap (absorbed to enclosure)


class _BatchBank:
    """Result arrays of one batch, filled in as its walks retire."""

    __slots__ = ("uids", "omega", "dest", "steps", "remaining", "truncated")

    def __init__(self, uids: np.ndarray):
        n = uids.shape[0]
        self.uids = uids
        self.omega = np.zeros(n, dtype=np.float64)
        self.dest = np.full(n, -1, dtype=np.int64)
        self.steps = np.zeros(n, dtype=np.int64)
        self.remaining = n
        self.truncated = 0

    def results(self) -> WalkResults:
        return WalkResults(
            uids=self.uids,
            omega=self.omega,
            dest=self.dest,
            steps=self.steps,
            truncated=self.truncated,
        )


class WalkPipeline:
    """Refill-capable walk engine with cross-batch pipelining.

    Parameters
    ----------
    ctx:
        Extraction context of the master conductor.
    streams:
        A per-walk stream provider (``WalkStreams`` or ``MTWalkStreams``).
    feed:
        ``feed(batch_index) -> uids | None``; called with consecutive batch
        indices (0, 1, 2, ...) and returns that batch's UID array, or
        ``None`` when the supply is exhausted.
    width:
        Target active-vector width (normally the batch size).
    lookahead:
        How many batches beyond the oldest outstanding one may be pulled in
        to refill freed slots.  ``0`` disables cross-batch refilling (the
        active set shrinks to a tail within each batch, as the plain batch
        engine does); the walks' *results* are identical either way.
    trace:
        When given, per-step positions of all active walks are appended as
        ``(rows_in_batch, positions)`` tuples (small single-batch runs only;
        used by the scalar reference and Fig. 2).
    """

    def __init__(
        self,
        ctx: ExtractionContext,
        streams,
        feed: Callable[[int], np.ndarray | None],
        width: int,
        lookahead: int = 1,
        trace: list | None = None,
    ):
        self.ctx = ctx
        self.streams = streams
        self.feed = feed
        self.width = max(1, int(width))
        self.lookahead = max(0, int(lookahead))
        self.trace = trace
        self._stack = ctx.structure.dielectric
        self._interfaces = self._stack._z  # () for homogeneous
        self._enclosure_index = ctx.enclosure_index
        self._table = ctx.table
        self._flux_scale = ctx.flux_scale
        self._can_release = hasattr(streams, "release")

        self._banks: dict[int, _BatchBank] = {}
        self._next_feed = 0
        self._next_emit = 0
        self._pending: np.ndarray | None = None
        self._pending_batch = -1
        self._pending_off = 0
        self._feed_done = False

        # Active walk state (structure-of-arrays, compacted as walks retire).
        self._uid = np.empty(0, dtype=np.uint64)
        self._bank = np.empty(0, dtype=np.int64)
        self._row = np.empty(0, dtype=np.int64)
        self._step_no = np.empty(0, dtype=np.int64)
        self._pos = np.empty((0, 3), dtype=np.float64)
        self._eps = np.empty(0, dtype=np.float64)
        self._first = np.empty(0, dtype=bool)
        self._naxis = np.empty(0, dtype=np.int64)
        self._nsign = np.empty(0, dtype=np.float64)

    @property
    def active(self) -> int:
        """Number of in-flight walks."""
        return self._uid.shape[0]

    @property
    def outstanding_batches(self) -> int:
        """Batches fed but not yet emitted."""
        return self._next_feed - self._next_emit

    # ------------------------------------------------------------------
    # Feeding and launching
    # ------------------------------------------------------------------
    def _ensure_pending(self) -> bool:
        """Make sure un-launched UIDs are available; False when starved."""
        while True:
            if (
                self._pending is not None
                and self._pending_off < self._pending.shape[0]
            ):
                return True
            if self._feed_done or self._next_feed > self._next_emit + self.lookahead:
                return False
            uids = self.feed(self._next_feed)
            if uids is None:
                self._feed_done = True
                return False
            uids = np.asarray(uids, dtype=np.uint64)
            self._banks[self._next_feed] = _BatchBank(uids)
            self._pending = uids
            self._pending_batch = self._next_feed
            self._pending_off = 0
            self._next_feed += 1

    def _refill(self) -> None:
        launched = False
        while self.active < self.width and self._ensure_pending():
            off = self._pending_off
            take = min(self.width - self.active, self._pending.shape[0] - off)
            uids = self._pending[off : off + take]
            rows = np.arange(off, off + take, dtype=np.int64)
            self._pending_off = off + take
            self._launch(uids, self._pending_batch, rows)
            launched = True
        if launched and self.trace is not None:
            self.trace.append((self._row.copy(), self._pos.copy()))

    def _launch(self, uids: np.ndarray, batch: int, rows: np.ndarray) -> None:
        u = self.streams.draws(uids, 0, 3)
        pos, naxis, nsign = self.ctx.surface.sample(u)
        eps = self._stack.eps_at(pos[:, 2])
        n = uids.shape[0]
        if self.active == 0:
            self._uid = uids.astype(np.uint64, copy=True)
            self._bank = np.full(n, batch, dtype=np.int64)
            self._row = rows
            self._step_no = np.ones(n, dtype=np.int64)
            self._pos = pos
            self._eps = eps
            self._first = np.ones(n, dtype=bool)
            self._naxis = np.asarray(naxis, dtype=np.int64)
            self._nsign = np.asarray(nsign, dtype=np.float64)
        else:
            self._uid = np.concatenate([self._uid, uids])
            self._bank = np.concatenate([self._bank, np.full(n, batch, dtype=np.int64)])
            self._row = np.concatenate([self._row, rows])
            self._step_no = np.concatenate([self._step_no, np.ones(n, dtype=np.int64)])
            self._pos = np.concatenate([self._pos, pos])
            self._eps = np.concatenate([self._eps, eps])
            self._first = np.concatenate([self._first, np.ones(n, dtype=bool)])
            self._naxis = np.concatenate([self._naxis, np.asarray(naxis, dtype=np.int64)])
            self._nsign = np.concatenate([self._nsign, np.asarray(nsign, dtype=np.float64)])

    # ------------------------------------------------------------------
    # Retiring and compaction
    # ------------------------------------------------------------------
    def _retire(
        self,
        mask: np.ndarray,
        dest: np.ndarray,
        steps: np.ndarray,
        truncated: bool,
    ) -> None:
        """Bank the outcomes of the masked walks and release their streams."""
        banks = self._bank[mask]
        rows = self._row[mask]
        for b in np.unique(banks):
            sel = banks == b
            bank = self._banks[int(b)]
            bank.dest[rows[sel]] = dest[sel]
            bank.steps[rows[sel]] = steps[sel]
            count = int(sel.sum())
            bank.remaining -= count
            if truncated:
                bank.truncated += count
        if self._can_release:
            # Each stream is released exactly once, when its walk retires
            # (matters for the MTWalkStreams per-walk state cache).
            self.streams.release(self._uid[mask])

    def _compact(self, keep: np.ndarray) -> None:
        self._uid = self._uid[keep]
        self._bank = self._bank[keep]
        self._row = self._row[keep]
        self._step_no = self._step_no[keep]
        self._pos = self._pos[keep]
        self._eps = self._eps[keep]
        self._first = self._first[keep]
        self._naxis = self._naxis[keep]
        self._nsign = self._nsign[keep]

    def _store_omega(self, idx: np.ndarray, omega: np.ndarray) -> None:
        banks = self._bank[idx]
        rows = self._row[idx]
        for b in np.unique(banks):
            sel = banks == b
            self._banks[int(b)].omega[rows[sel]] = omega[sel]

    # ------------------------------------------------------------------
    # The vector step
    # ------------------------------------------------------------------
    def _step(self) -> None:
        """Advance every active walk by one hop (identical math to the
        historical batch loop; walks at different depths mix freely because
        all per-walk operations are elementwise)."""
        if self.active == 0:
            return
        cfg = self.ctx.config

        # Safety net: treat over-cap survivors as absorbed by the enclosure.
        over = self._step_no > cfg.max_steps
        if np.any(over):
            dest = np.full(int(over.sum()), self._enclosure_index, dtype=np.int64)
            self._retire(over, dest, self._step_no[over], truncated=True)
            self._compact(~over)
            if self.active == 0:
                return

        pos = self._pos
        dist_c, cond = self.ctx.index.query(pos)
        dist_e = self.ctx.structure.enclosure_distance(pos)

        absorb_wall = dist_e < self.ctx.absorb_tol
        absorb_cond = (dist_c < self.ctx.absorb_tol) & (cond >= 0) & ~absorb_wall
        done = absorb_wall | absorb_cond
        if np.any(done & self._first):
            raise ConvergenceError(
                "walk absorbed before its first hop; the Gaussian surface "
                "offset is smaller than the absorption tolerance"
            )
        if np.any(done):
            dest = np.where(absorb_wall[done], self._enclosure_index, cond[done])
            self._retire(done, dest, self._step_no[done], truncated=False)
            keep = ~done
            self._compact(keep)
            dist_c = dist_c[keep]
            dist_e = dist_e[keep]
            if self.active == 0:
                return

        u = self.streams.draws(self._uid, self._step_no, 3)
        allow = np.minimum(np.minimum(dist_c, dist_e), self.ctx.h_cap)
        pos = self._pos
        first = self._first

        if self._stack.is_homogeneous:
            on_iface = np.zeros(self.active, dtype=bool)
            dist_i = np.full(self.active, np.inf)
        else:
            dist_i = self._stack.interface_distance(pos[:, 2])
            # First hops never snap: the hemisphere step has no unbiased
            # normal-gradient estimator across the interface, so the flux
            # weight must come from an interface-clamped cube (the context
            # guarantees launch points keep clearance from interfaces).
            on_iface = (dist_i < cfg.interface_snap_fraction * allow) & ~first

        new_pos = np.empty_like(pos)

        cube = ~on_iface
        if np.any(cube):
            h = np.minimum(allow[cube], dist_i[cube])
            # First hops carry the 1/h flux weight: floor h near interfaces
            # (the cube then crosses the interface slightly — a small,
            # bounded bias instead of unbounded weight variance).
            floor = cfg.first_hop_interface_floor
            if floor > 0.0 and np.any(first[cube]):
                fc_mask = first[cube]
                h[fc_mask] = np.maximum(h[fc_mask], floor * allow[cube][fc_mask])
            cells = self._table.sample_cells(u[cube, 0])
            unit = self._table.unit_positions(cells, u[cube, 1], u[cube, 2])
            new_pos[cube] = (pos[cube] - h[:, None]) + unit * (2.0 * h)[:, None]
            fc = first[cube]
            if np.any(fc):
                cube_idx = np.nonzero(cube)[0][fc]
                ratio = self._table.grad_ratio[self._naxis[cube_idx], cells[fc]]
                omega = (
                    -self._flux_scale
                    * self._eps[cube_idx]
                    * self._nsign[cube_idx]
                    * ratio
                    / (2.0 * h[fc])
                )
                self._store_omega(cube_idx, omega)
        if np.any(on_iface):
            z = pos[on_iface, 2]
            k = self._stack.nearest_interface(z)
            z_k = self._stack.interface_z(k)
            eps_below, eps_above = self._stack.interface_eps_pair(k)
            # Sphere radius: stay clear of conductors/walls (minus the snap
            # displacement) and of the other interfaces.
            r = np.minimum(
                allow[on_iface] - dist_i[on_iface],
                _other_interface_gap(self._interfaces, k),
            )
            r = np.maximum(r, 0.5 * self.ctx.absorb_tol)
            direction = interface_hemisphere_direction(
                u[on_iface, 0], u[on_iface, 1], u[on_iface, 2], eps_below, eps_above
            )
            center = pos[on_iface].copy()
            center[:, 2] = z_k
            new_pos[on_iface] = center + r[:, None] * direction

        self._pos = new_pos
        self._first = np.zeros(self.active, dtype=bool)
        self._step_no = self._step_no + 1
        if self.trace is not None:
            self.trace.append((self._row.copy(), self._pos.copy()))

    # ------------------------------------------------------------------
    # Batch emission
    # ------------------------------------------------------------------
    def next_batch(self) -> WalkResults | None:
        """Run until the oldest outstanding batch completes and return it.

        Slots freed by retiring walks are refilled with UIDs from up to
        ``lookahead`` batches ahead, so later batches are typically already
        in flight (or finished and banked) when their turn comes.  Returns
        ``None`` when the feed is exhausted and no batch is outstanding.
        """
        target = self._next_emit
        while True:
            self._refill()
            bank = self._banks.get(target)
            if bank is not None and bank.remaining == 0:
                break
            if bank is None and self._feed_done:
                return None
            self._step()
        self._next_emit += 1
        del self._banks[target]
        return bank.results()


def run_walks(
    ctx: ExtractionContext,
    streams,
    uids: np.ndarray,
    trace: list | None = None,
) -> WalkResults:
    """Run a batch of walks to absorption.

    Parameters
    ----------
    ctx:
        Extraction context of the master conductor.
    streams:
        A per-walk stream provider (``WalkStreams`` or ``MTWalkStreams``).
    uids:
        Walk UIDs to execute; results are returned in the same order.
    trace:
        When given, per-step positions of all walks are appended (small
        batches only; used by the scalar reference and Fig. 2).
    """
    uids = np.asarray(uids, dtype=np.uint64)

    def feed(batch_index: int) -> np.ndarray | None:
        return uids if batch_index == 0 else None

    pipe = WalkPipeline(
        ctx, streams, feed, width=max(1, uids.shape[0]), lookahead=0, trace=trace
    )
    return pipe.next_batch()


def run_walks_pipelined(
    ctx: ExtractionContext,
    streams,
    uids: np.ndarray,
    width: int,
    lookahead: int = 1,
) -> WalkResults:
    """Run a fixed UID set through the refill pipeline in ``width``-sized
    batches, reassembling per-batch results in UID order.

    Bit-identical to :func:`run_walks` on the same UIDs; only the schedule
    (and hence the throughput) differs.
    """
    uids = np.asarray(uids, dtype=np.uint64)
    n = uids.shape[0]
    width = max(1, int(width))
    n_batches = (n + width - 1) // width

    def feed(batch_index: int) -> np.ndarray | None:
        if batch_index >= n_batches:
            return None
        return uids[batch_index * width : (batch_index + 1) * width]

    pipe = WalkPipeline(ctx, streams, feed, width=width, lookahead=lookahead)
    parts = []
    for _ in range(n_batches):
        parts.append(pipe.next_batch())
    if not parts:
        return WalkResults(
            uids=uids,
            omega=np.zeros(0, dtype=np.float64),
            dest=np.full(0, -1, dtype=np.int64),
            steps=np.zeros(0, dtype=np.int64),
            truncated=0,
        )
    return WalkResults(
        uids=uids,
        omega=np.concatenate([p.omega for p in parts]),
        dest=np.concatenate([p.dest for p in parts]),
        steps=np.concatenate([p.steps for p in parts]),
        truncated=sum(p.truncated for p in parts),
    )


def _other_interface_gap(interfaces: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Distance from interface ``k`` to its nearest neighbouring interface."""
    if interfaces.shape[0] < 2:
        return np.full(np.asarray(k).shape, np.inf)
    gaps = np.diff(interfaces)
    below = np.where(k > 0, gaps[np.maximum(k - 1, 0)], np.inf)
    above = np.where(
        k < interfaces.shape[0] - 1,
        gaps[np.minimum(k, gaps.shape[0] - 1)],
        np.inf,
    )
    return np.minimum(below, above)
