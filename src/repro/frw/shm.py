"""Shared-memory context plane: publish/attach for extraction contexts.

The process backend needs every worker to see the big read-only context
assets — the cube transition table, the spatial index's CSR arrays and
tier-1 bounds, the conductor geometry SoA, the Gaussian-surface sampling
arrays.  Historically they travelled by fork inheritance, which forced a
pool restart per registration wave and tied the backend to POSIX ``fork``.
This module replaces that with an explicit, spawn-safe protocol:

* :func:`publish_context` packs a context's arrays into **one**
  ``multiprocessing.shared_memory`` block (64-byte-aligned layout) and
  returns a small picklable :class:`ContextManifest` — block name, per-array
  dtype/shape/offset specs, a pickled scalar skeleton (config, dielectric
  stack, enclosure, grid geometry), the stream spec, and a BLAKE2b content
  hash.
* :func:`attach_context` (worker side) maps the named block, rebuilds an
  :class:`~repro.frw.context.ExtractionContext` over zero-copy read-only
  views, verifies the content hash, and caches the attachment by block
  name — so steady-state dispatch ships only the manifest and the worker
  does no per-batch deserialisation at all.

Reconstruction goes through the ``packed()`` / ``from_packed()`` pairs of
:class:`~repro.geometry.GaussianSurface`, :class:`~repro.geometry.GridIndex`,
:class:`~repro.geometry.BruteForceIndex` and
:class:`~repro.greens.CubeTransitionTable`; derived state is recomputed by
the same expressions the building constructors use, so an attached context
is *bit-identical* to the published one — the content hash makes that
checkable, not assumed.

Lifecycle safety: the publishing process owns every block it creates
(``release_manifest`` / ``release_all`` close **and unlink**; an ``atexit``
guard releases stragglers).  Attaching pool children share the parent's
resource tracker, so their attach-side registration is an idempotent no-op
against the publisher's entry.  Fork-pool children exit via ``os._exit``
and never run the guard; spawn children start with an empty registry —
either way only the publisher unlinks, exactly once.

This module is the *only* place raw ``SharedMemory`` objects may be
constructed (enforced by det-lint rule DET008): the read-only discipline
and unlink-exactly-once ownership are what keep the context plane safe to
share across schedules.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from ..errors import DeterminismError
from ..geometry import BruteForceIndex, GaussianSurface, GridIndex
from ..greens import CubeTransitionTable
from .context import ExtractionContext, StructureView

#: Alignment of every array inside a block (cache-line sized, and enough
#: for any numpy dtype).
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Location of one packed array inside a context block."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ContextManifest:
    """Everything a worker needs to attach one published context.

    A manifest is a few kilobytes and pickles fast: ``meta`` is the pickled
    scalar skeleton (config, dielectric stack, enclosure, index geometry),
    ``spec`` is the ``(rng_kind, seed, stream)`` stream spec, and
    ``content_hash`` pins the exact bytes of ``meta`` plus every packed
    array, so a stale or torn attachment fails loudly instead of producing
    silently different walks.
    """

    block: str
    nbytes: int
    arrays: tuple[ArraySpec, ...]
    meta: bytes
    spec: tuple
    content_hash: str


# ----------------------------------------------------------------------
# Process-local registries.
#
# _PUBLISHED maps block name -> (segment, owner pid) for blocks created by
# *this* process; only entries whose owner pid matches os.getpid() are
# unlinked (fork children inherit the dict but pool workers exit via
# os._exit and never reach the atexit guard; the pid check covers any
# other fork).  _ATTACHED maps block name -> (content hash, segment,
# reconstructed context) and is the worker-side attachment cache.
# ----------------------------------------------------------------------
_PUBLISHED: dict[str, tuple[SharedMemory, int]] = {}
_ATTACHED: dict[str, tuple[str, SharedMemory, ExtractionContext]] = {}
_ATTACHES = 0
_BLOCK_SEQ = 0


def _next_block_name() -> str:
    """Deterministic per-process block name (pid + counter, no entropy)."""
    global _BLOCK_SEQ
    _BLOCK_SEQ += 1
    return f"frwctx-{os.getpid()}-{_BLOCK_SEQ}"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _content_hash(meta: bytes, spec: tuple, items) -> str:
    """BLAKE2b over the scalar skeleton, stream spec, and array bytes.

    ``items`` is an ordered ``(key, contiguous ndarray)`` sequence; the
    same ordering is used on publish and attach, so equal hashes mean the
    attached views are byte-for-byte the published arrays.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(meta)
    h.update(repr(spec).encode())
    for key, arr in items:
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(repr(tuple(arr.shape)).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _context_payload(ctx: ExtractionContext):
    """Split a context into (meta dict, ordered [(key, array)] list)."""
    surf_scalars, surf_arrays = ctx.surface.packed()
    index_scalars, index_arrays = ctx.index.packed()
    table_scalars, table_arrays = ctx.table.packed()
    meta = {
        "master": int(ctx.master),
        "config": ctx.config,
        "h_cap": float(ctx.h_cap),
        "absorb_tol": float(ctx.absorb_tol),
        "dielectric": ctx.structure.dielectric,
        "enclosure": ctx.structure.enclosure,
        "n_base_conductors": len(ctx.structure.conductors),
        "surface": surf_scalars,
        "index": index_scalars,
        "table": table_scalars,
    }
    items = []
    for group, arrays in (
        ("surface", surf_arrays),
        ("index", index_arrays),
        ("table", table_arrays),
    ):
        for key in arrays:
            items.append(
                (f"{group}.{key}", np.ascontiguousarray(arrays[key]))
            )
    return meta, items


def publish_context(ctx: ExtractionContext, spec: tuple) -> ContextManifest:
    """Copy a context's arrays into a fresh shared block; return its manifest.

    The publishing process owns the block: it stays mapped (and listed by
    :func:`published_blocks`) until :func:`release_manifest`,
    :func:`release_all`, or the atexit guard unlinks it.  ``spec`` is the
    ``(rng_kind, seed, stream)`` stream spec the workers rebuild their
    per-walk streams from.
    """
    meta, items = _context_payload(ctx)
    specs = []
    offset = 0
    for key, arr in items:
        offset = _aligned(offset)
        specs.append(ArraySpec(key, str(arr.dtype), tuple(arr.shape), offset))
        offset += arr.nbytes
    nbytes = max(1, offset)
    name = _next_block_name()
    seg = SharedMemory(name=name, create=True, size=nbytes)
    for aspec, (_key, arr) in zip(specs, items):
        dst = np.ndarray(
            aspec.shape, dtype=arr.dtype, buffer=seg.buf, offset=aspec.offset
        )
        dst[...] = arr
    _PUBLISHED[name] = (seg, os.getpid())
    meta_bytes = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    return ContextManifest(
        block=name,
        nbytes=seg.size,
        arrays=tuple(specs),
        meta=meta_bytes,
        spec=tuple(spec),
        content_hash=_content_hash(meta_bytes, tuple(spec), items),
    )


def _open_block(name: str) -> SharedMemory:
    # Python 3.11 registers every attach with the resource tracker.  All
    # attachers in this design are pool children, and multiprocessing
    # hands every child (fork, spawn, and forkserver alike) the parent's
    # tracker fd — so the attach-side register is an idempotent re-add of
    # the publisher's own entry (the tracker cache is a set), and the
    # publisher's release performs the single unregister+unlink.  Do NOT
    # unregister here: with a shared tracker that would delete the
    # publisher's entry and make the final unlink misaccounted.
    return SharedMemory(name=name)


def _view(seg: SharedMemory, aspec: ArraySpec) -> np.ndarray:
    arr = np.ndarray(
        aspec.shape,
        dtype=np.dtype(aspec.dtype),
        buffer=seg.buf,
        offset=aspec.offset,
    )
    arr.flags.writeable = False
    return arr


def _reconstruct(
    manifest: ContextManifest, seg: SharedMemory
) -> ExtractionContext:
    views = {a.key: _view(seg, a) for a in manifest.arrays}
    got = _content_hash(
        manifest.meta,
        manifest.spec,
        [(a.key, views[a.key]) for a in manifest.arrays],
    )
    if got != manifest.content_hash:
        raise DeterminismError(
            f"shared context block {manifest.block!r} does not match its "
            f"manifest (hash {got} != {manifest.content_hash}); the block "
            "was mutated or the manifest is stale"
        )
    meta = pickle.loads(manifest.meta)

    def group(prefix: str) -> dict[str, np.ndarray]:
        cut = len(prefix) + 1
        return {
            k[cut:]: v for k, v in views.items() if k.startswith(prefix + ".")
        }

    surface = GaussianSurface.from_packed(meta["surface"], group("surface"))
    index_scalars = meta["index"]
    if index_scalars["kind"] == "grid":
        index = GridIndex.from_packed(index_scalars, group("index"))
    else:
        index = BruteForceIndex.from_packed(index_scalars, group("index"))
    table = CubeTransitionTable.from_packed(meta["table"], group("table"))
    structure = StructureView(
        dielectric=meta["dielectric"],
        enclosure=meta["enclosure"],
        n_base_conductors=meta["n_base_conductors"],
    )
    return ExtractionContext(
        structure=structure,
        master=meta["master"],
        config=meta["config"],
        surface=surface,
        index=index,
        table=table,
        h_cap=meta["h_cap"],
        absorb_tol=meta["absorb_tol"],
    )


def attach_context(manifest: ContextManifest) -> ExtractionContext:
    """Attach a published context (cached per process by block name).

    The first attach maps the block, rebuilds the context over read-only
    views, and verifies the content hash; later calls with the same block
    return the cached context in O(1).  A cached block whose hash disagrees
    with the manifest raises :class:`~repro.errors.DeterminismError` —
    block names are never reused within a publishing process, so this only
    fires on genuine corruption or cross-process name collisions.
    """
    global _ATTACHES
    entry = _ATTACHED.get(manifest.block)
    if entry is not None:
        if entry[0] != manifest.content_hash:
            raise DeterminismError(
                f"shared context block {manifest.block!r} is cached with "
                f"hash {entry[0]} but the manifest expects "
                f"{manifest.content_hash}"
            )
        return entry[2]
    seg = _open_block(manifest.block)
    ctx = _reconstruct(manifest, seg)
    _ATTACHED[manifest.block] = (manifest.content_hash, seg, ctx)
    _ATTACHES += 1
    return ctx


def attach_count() -> int:
    """How many distinct blocks this process has attached (telemetry)."""
    return _ATTACHES


def published_blocks() -> list[str]:
    """Names of the blocks this process has published and not yet released."""
    return sorted(_PUBLISHED)


def _release_block(name: str) -> None:
    entry = _PUBLISHED.pop(name, None)
    if entry is None:
        return
    seg, owner = entry
    seg.close()
    if owner != os.getpid():
        # A forked copy of the publisher's registry: the block belongs to
        # the parent, which unlinks it; just drop the mapping.
        return
    try:
        seg.unlink()
    except FileNotFoundError:
        pass  # already gone (double release is not an error)


def release_manifest(manifest: ContextManifest) -> None:
    """Close and unlink one published block (publisher side, idempotent)."""
    _release_block(manifest.block)


def release_all() -> None:
    """Close and unlink every block this process still owns."""
    for name in sorted(_PUBLISHED):
        _release_block(name)


# Interpreter-shutdown guard: a solver that is garbage collected without
# close() (or a crashed extraction) must not leave blocks in /dev/shm.
atexit.register(release_all)
