"""FRWSolver — the user-facing facade over all solver variants.

Typical use::

    from repro import FRWSolver, FRWConfig, Structure

    solver = FRWSolver(structure, FRWConfig.frw_rr(seed=7, n_threads=16,
                                                   tolerance=1e-2))
    result = solver.extract()          # all conductors as masters
    print(result.matrix.pretty())
    print(result.report)               # property metrics

Variant dispatch (Sec. V):

========  =========================================  ====================
variant   scheme                                     post-process
========  =========================================  ====================
alg1      Alg. 1 baseline [1]                        none
frw-nk    Alg. 2, naive summation                    none
frw-nc    Alg. 2, Kahan, MT per-walk reseeding       none
frw-r     Alg. 2, Kahan, CBRNG                       none
frw-rr    Alg. 2, Kahan, CBRNG                       Alg. 3 regularization
========  =========================================  ====================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis.capmatrix import CapacitanceMatrix
from ..config import FRWConfig
from ..errors import ConfigError
from ..geometry import Structure
from ..reliability import PropertyReport, check_properties, regularize
from .alg1_baseline import extract_row_alg1
from .alg2_reproducible import RunStats, extract_row_alg2
from .context import ExtractionContext, build_context
from .estimator import CapacitanceRow
from .parallel import PersistentExecutor, resolve_workers, stream_spec


@dataclass
class ExtractionResult:
    """Full multi-master extraction output."""

    matrix: CapacitanceMatrix
    raw_matrix: CapacitanceMatrix
    rows: list[CapacitanceRow]
    stats: list[RunStats]
    config: FRWConfig
    wall_time: float
    regularization_time: float = 0.0
    report: PropertyReport | None = field(default=None)

    @property
    def total_walks(self) -> int:
        """Walks across all masters."""
        return sum(s.walks for s in self.stats)

    @property
    def total_steps(self) -> int:
        """Walk steps across all masters."""
        return sum(s.total_steps for s in self.stats)

    @property
    def converged(self) -> bool:
        """Whether every master met the stopping criterion."""
        return all(s.converged for s in self.stats)

    def modeled_runtime(self, n_threads: int | None = None) -> float:
        """Parallel runtime model for Fig. 5 (seconds).

        ``max_t(work_t)`` summed over masters, scaled by the measured
        single-thread step throughput of this run.  With ``n_threads`` the
        schedule work counters must have been collected at that DOP.
        """
        total_span = sum(float(s.thread_work.max()) for s in self.stats)
        total_work = sum(float(s.thread_work.sum()) for s in self.stats)
        if total_work == 0.0:
            return 0.0
        seconds_per_unit = self.wall_time / total_work
        return total_span * seconds_per_unit


class FRWSolver:
    """Parallel FRW capacitance extractor for a :class:`Structure`.

    The solver owns the real-concurrency resources: extraction contexts are
    cached per master and, when the config selects a ``thread`` or
    ``process`` executor with more than one worker, one
    :class:`~repro.frw.parallel.PersistentExecutor` is created lazily and
    reused across batches *and* masters.  Call :meth:`close` (or use the
    solver as a context manager) to release the pools; results are
    bit-identical across executor backends, so this only affects wall time.
    """

    def __init__(self, structure: Structure, config: FRWConfig | None = None):
        self.structure = structure
        self.config = config if config is not None else FRWConfig()
        self._contexts: dict[int, ExtractionContext] = {}
        self._executor: PersistentExecutor | None = None

    def context(self, master: int) -> ExtractionContext:
        """Cached extraction context for one master conductor."""
        ctx = self._contexts.get(master)
        if ctx is None:
            ctx = build_context(self.structure, master, self.config)
            self._contexts[master] = ctx
        return ctx

    def walk_executor(self) -> PersistentExecutor | None:
        """The solver-owned persistent pool, or ``None`` for serial runs.

        Created on first use; ``None`` whenever the config resolves to
        serial execution (``executor="serial"`` or a single worker), in
        which case the batch runners fall back to the in-process engine.
        """
        cfg = self.config
        if cfg.executor == "serial" or resolve_workers(cfg.n_workers) <= 1:
            return None
        if self._executor is None:
            self._executor = PersistentExecutor(
                cfg.executor, cfg.n_workers, cfg.chunk_size
            )
        return self._executor

    def close(self) -> None:
        """Release executor pools (idempotent; solver stays usable)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "FRWSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def extract_row(self, master: int) -> tuple[CapacitanceRow, RunStats]:
        """Extract a single row of the capacitance matrix."""
        ctx = self.context(master)
        if self.config.variant == "alg1":
            return extract_row_alg1(ctx, self.config)
        return extract_row_alg2(ctx, self.config, executor=self.walk_executor())

    def extract(self, masters: list[int] | None = None) -> ExtractionResult:
        """Extract rows for the given masters (default: all conductors).

        For ``frw-rr``, masters must be ``0..Nm-1`` (the regularization
        couples rows through the symmetry constraint).
        """
        if masters is None:
            masters = list(range(len(self.structure.conductors)))
        if not masters:
            raise ConfigError("need at least one master conductor")
        executor = self.walk_executor()
        if executor is not None and executor.backend == "process":
            # Register every master's context before the first batch so the
            # fork pool ships them all at once and never restarts mid-run.
            for master in masters:
                executor.register(
                    self.context(master), stream_spec(self.config, master)
                )
        t0 = time.perf_counter()
        rows: list[CapacitanceRow] = []
        stats: list[RunStats] = []
        for master in masters:
            row, stat = self.extract_row(master)
            rows.append(row)
            stats.append(stat)
        wall = time.perf_counter() - t0

        raw = CapacitanceMatrix(
            values=np.stack([r.values for r in rows]),
            masters=list(masters),
            names=self.structure.names,
            sigma2=np.stack([r.sigma2 for r in rows]),
            hits=np.stack([r.hits for r in rows]),
            meta={
                "variant": self.config.variant,
                "seed": self.config.seed,
                "n_threads": self.config.n_threads,
                "tolerance": self.config.tolerance,
            },
        )
        reg_time = 0.0
        if self.config.uses_regularization:
            t1 = time.perf_counter()
            matrix = regularize(raw)
            reg_time = time.perf_counter() - t1
        else:
            matrix = raw
        return ExtractionResult(
            matrix=matrix,
            raw_matrix=raw,
            rows=rows,
            stats=stats,
            config=self.config,
            wall_time=wall,
            regularization_time=reg_time,
            report=check_properties(matrix),
        )


def extract(
    structure: Structure,
    config: FRWConfig | None = None,
    masters: list[int] | None = None,
) -> ExtractionResult:
    """One-call extraction convenience function."""
    return FRWSolver(structure, config).extract(masters)
