"""FRWSolver — the user-facing facade over all solver variants.

Typical use::

    from repro import FRWSolver, FRWConfig, Structure

    solver = FRWSolver(structure, FRWConfig.frw_rr(seed=7, n_threads=16,
                                                   tolerance=1e-2))
    result = solver.extract()          # all conductors as masters
    print(result.matrix.pretty())
    print(result.report)               # property metrics

Variant dispatch (Sec. V):

========  =========================================  ====================
variant   scheme                                     post-process
========  =========================================  ====================
alg1      Alg. 1 baseline [1]                        none
frw-nk    Alg. 2, naive summation                    none
frw-nc    Alg. 2, Kahan, MT per-walk reseeding       none
frw-r     Alg. 2, Kahan, CBRNG                       none
frw-rr    Alg. 2, Kahan, CBRNG                       Alg. 3 regularization
========  =========================================  ====================

Multi-master extractions run through the cross-master interleaved
scheduler by default (``config.interleave_masters``): batches from all
masters share the one executor, and per-master rows stay bit-identical
to the serial per-master loop (see :mod:`repro.frw.cross_master`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis.capmatrix import CapacitanceMatrix
from ..config import FRWConfig
from ..errors import ConfigError
from ..geometry import Structure
from ..lint.sanitizer import maybe_forbid_global_rng
from ..reliability import PropertyReport, check_properties, regularize
from .alg1_baseline import extract_row_alg1
from .alg2_reproducible import RunStats, extract_row_alg2
from .context import ExtractionContext, SharedAssets, build_context
from .cross_master import extract_rows_interleaved, resolve_wave
from .estimator import CapacitanceRow
from .parallel import PersistentExecutor, resolve_workers, stream_spec


@dataclass
class ExtractionResult:
    """Full multi-master extraction output."""

    matrix: CapacitanceMatrix
    raw_matrix: CapacitanceMatrix
    rows: list[CapacitanceRow]
    stats: list[RunStats]
    config: FRWConfig
    wall_time: float
    regularization_time: float = 0.0
    report: PropertyReport | None = field(default=None)

    @property
    def total_walks(self) -> int:
        """Walks across all masters."""
        return sum(s.walks for s in self.stats)

    @property
    def total_steps(self) -> int:
        """Walk steps across all masters."""
        return sum(s.total_steps for s in self.stats)

    @property
    def converged(self) -> bool:
        """Whether every master met the stopping criterion."""
        return all(s.converged for s in self.stats)

    def modeled_runtime(self, n_threads: int | None = None) -> float:
        """Parallel runtime model for Fig. 5 (seconds).

        ``max_t(work_t)`` summed over masters, scaled by the measured
        single-thread step throughput of this run.  The schedule work
        counters are collected at the configured DOP; passing
        ``n_threads`` asserts that every master's counters were collected
        at exactly that DOP (a mismatch raises ``ValueError`` instead of
        silently modeling the wrong machine).
        """
        if n_threads is not None:
            collected = sorted(
                {int(s.thread_work.shape[0]) for s in self.stats}
            )
            if collected != [int(n_threads)]:
                raise ValueError(
                    f"modeled_runtime(n_threads={n_threads}) but the "
                    f"schedule was collected at DOP(s) {collected}"
                )
        total_span = math.fsum(float(s.thread_work.max()) for s in self.stats)
        total_work = math.fsum(float(s.thread_work.sum()) for s in self.stats)
        if total_work == 0.0:
            return 0.0
        seconds_per_unit = self.wall_time / total_work
        return total_span * seconds_per_unit


def assemble_result(
    structure: Structure,
    config: FRWConfig,
    masters: list[int],
    rows: list[CapacitanceRow],
    stats: list[RunStats],
    wall_time: float,
    extra_meta: dict | None = None,
) -> ExtractionResult:
    """Matrix assembly + regularization epilogue shared by every
    extraction entry point (``FRWSolver.extract``, ``multilevel_extract``),
    so result metadata cannot drift between them."""
    meta = {
        "variant": config.variant,
        "seed": config.seed,
        "n_threads": config.n_threads,
        "tolerance": config.tolerance,
    }
    if extra_meta:
        meta.update(extra_meta)
    raw = CapacitanceMatrix(
        values=np.stack([r.values for r in rows]),
        masters=list(masters),
        names=structure.names,
        sigma2=np.stack([r.sigma2 for r in rows]),
        hits=np.stack([r.hits for r in rows]),
        meta=meta,
    )
    reg_time = 0.0
    if config.uses_regularization:
        t1 = time.perf_counter()
        matrix = regularize(raw)
        reg_time = time.perf_counter() - t1
    else:
        matrix = raw
    return ExtractionResult(
        matrix=matrix,
        raw_matrix=raw,
        rows=rows,
        stats=stats,
        config=config,
        wall_time=wall_time,
        regularization_time=reg_time,
        report=check_properties(matrix),
    )


class FRWSolver:
    """Parallel FRW capacitance extractor for a :class:`Structure`.

    The solver owns the real-concurrency resources: extraction contexts are
    cached per master (sharing the master-independent assets — spatial
    index, cube table — through one :class:`SharedAssets` cache) and, when
    the config selects a ``thread`` or ``process`` executor with more than
    one worker, one :class:`~repro.frw.parallel.PersistentExecutor` is
    created lazily and reused across batches *and* masters.  Call
    :meth:`close` (or use the solver as a context manager) to release the
    pools; results are bit-identical across executor backends, so this only
    affects wall time.
    """

    def __init__(
        self,
        structure: Structure,
        config: FRWConfig | None = None,
        *,
        assets: SharedAssets | None = None,
        executor: PersistentExecutor | None = None,
    ):
        """``assets`` and ``executor`` (optional) inject *borrowed*
        resources owned by a longer-lived host — the memoizing extraction
        service shares one ``SharedAssets`` per canonical geometry and one
        executor fleet across all requests.  A borrowed executor must match
        the config's backend; it is never closed by this solver (only
        owned pools are released by :meth:`close`).
        """
        self.structure = structure
        self.config = config if config is not None else FRWConfig()
        if assets is not None and assets.structure is not structure:
            raise ConfigError(
                "injected SharedAssets was built for a different structure"
            )
        self.assets = assets if assets is not None else SharedAssets(structure)
        self._contexts: dict[int, ExtractionContext] = {}
        self._executor: PersistentExecutor | None = None
        self._owns_executor = executor is None
        if executor is not None:
            if executor.backend != self.config.executor:
                raise ConfigError(
                    f"injected executor backend {executor.backend!r} does "
                    f"not match config.executor {self.config.executor!r}"
                )
            self._executor = executor

    def context(self, master: int) -> ExtractionContext:
        """Cached extraction context for one master conductor."""
        ctx = self._contexts.get(master)
        if ctx is None:
            ctx = build_context(
                self.structure, master, self.config, assets=self.assets
            )
            self._contexts[master] = ctx
        return ctx

    def walk_executor(self) -> PersistentExecutor | None:
        """The solver-owned persistent pool, or ``None`` for serial runs.

        Created on first use; ``None`` whenever the config resolves to
        serial execution (``executor="serial"`` or a single worker), in
        which case the batch runners fall back to the in-process engine.
        """
        cfg = self.config
        if cfg.executor == "serial" or resolve_workers(cfg.n_workers) <= 1:
            return None
        if self._executor is None:
            self._executor = PersistentExecutor(
                cfg.executor,
                cfg.n_workers,
                cfg.chunk_size,
                mp_start_method=cfg.mp_start_method,
                shared_context=cfg.shared_context,
            )
        return self._executor

    def close(self) -> None:
        """Release owned executor pools (idempotent; solver stays usable).

        Borrowed executors (injected at construction) are left running —
        their owner decides their lifetime.
        """
        if self._executor is not None:
            if self._owns_executor:
                self._executor.close()
            self._executor = None
            self._owns_executor = True

    def __enter__(self) -> "FRWSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def extract_row(self, master: int) -> tuple[CapacitanceRow, RunStats]:
        """Extract a single row of the capacitance matrix.

        With ``config.sanitize`` set, the runtime RNG sanitizer is armed
        for the duration of the call: any global-RNG use anywhere in the
        process raises :class:`~repro.errors.DeterminismError`.
        """
        with maybe_forbid_global_rng(self.config.sanitize):
            ctx = self.context(master)
            if self.config.variant == "alg1":
                return extract_row_alg1(ctx, self.config)
            return extract_row_alg2(
                ctx, self.config, executor=self.walk_executor()
            )

    def _extract_serial_masters(
        self,
        masters: list[int],
        executor: PersistentExecutor | None,
        thread_overrides: dict[int, int] | None,
    ) -> tuple[list[CapacitanceRow], list[RunStats]]:
        """The historical master-after-master loop (alg1, opted-out
        interleaving).  Contexts for the process backend are registered
        lazily in waves, so a small master subset of a large structure
        builds and ships only its own contexts."""
        overrides = thread_overrides or {}
        wave = resolve_wave(
            self.config.register_wave,
            executor.n_workers if executor is not None else 1,
        )
        rows: list[CapacitanceRow] = []
        stats: list[RunStats] = []
        for start in range(0, len(masters), wave):
            chunk = masters[start : start + wave]
            if executor is not None and executor.backend == "process":
                # One registration burst per wave.  On the shared-memory
                # plane this publishes the wave's blocks up front (workers
                # attach lazily; the pool keeps running); on the legacy
                # fork-inheritance path the pool restarts once per wave,
                # shipping the whole wave's contexts together.
                for master in chunk:
                    executor.register(
                        self.context(master), stream_spec(self.config, master)
                    )
            for master in chunk:
                cfg = self.config
                t = overrides.get(master)
                if t is not None and t != cfg.n_threads:
                    cfg = cfg.with_(n_threads=max(1, t))
                ctx = self.context(master)
                if cfg.variant == "alg1":
                    row, stat = extract_row_alg1(ctx, cfg)
                else:
                    row, stat = extract_row_alg2(ctx, cfg, executor=executor)
                rows.append(row)
                stats.append(stat)
        return rows, stats

    def extract(
        self,
        masters: list[int] | None = None,
        *,
        thread_overrides: dict[int, int] | None = None,
        extra_meta: dict | None = None,
    ) -> ExtractionResult:
        """Extract rows for the given masters (default: all conductors).

        Multi-master calls run through the cross-master interleaved
        scheduler when ``config.interleave_masters`` is set (batches from
        all masters share the executor; rows are bit-identical to the
        serial per-master loop).  ``thread_overrides`` maps a master to
        the virtual-thread DOP its accumulation replays at (used by
        :func:`~repro.frw.multilevel.multilevel_extract` group plans).

        For ``frw-rr``, masters must be ``0..Nm-1`` (the regularization
        couples rows through the symmetry constraint).
        """
        if masters is None:
            masters = list(range(len(self.structure.conductors)))
        if not masters:
            raise ConfigError("need at least one master conductor")
        executor = self.walk_executor()
        interleaved = (
            self.config.interleave_masters
            and len(masters) > 1
            and self.config.variant != "alg1"
        )
        t0 = time.perf_counter()
        with maybe_forbid_global_rng(self.config.sanitize):
            if interleaved:
                rows, stats = extract_rows_interleaved(
                    masters,
                    self.config,
                    self.context,
                    executor=executor,
                    thread_overrides=thread_overrides,
                )
            else:
                rows, stats = self._extract_serial_masters(
                    masters, executor, thread_overrides
                )
        wall = time.perf_counter() - t0

        meta = {
            "schedule": {
                "interleaved": interleaved,
                "allocation": self.config.allocation,
                "antithetic": (
                    {
                        "group": self.config.antithetic_group,
                        "depth": self.config.antithetic_depth,
                    }
                    if self.config.antithetic
                    else None
                ),
                "asset_cache": self.assets.stats(),
                "query_stats": self.assets.query_stats(),
                "dispatched_batches": sum(s.dispatched_batches for s in stats),
                "discarded_batches": sum(s.discarded_batches for s in stats),
            }
        }
        if extra_meta:
            meta.update(extra_meta)
        return assemble_result(
            self.structure, self.config, masters, rows, stats, wall, meta
        )


def extract(
    structure: Structure,
    config: FRWConfig | None = None,
    masters: list[int] | None = None,
) -> ExtractionResult:
    """One-call extraction convenience function.

    Owns the solver lifecycle: executor pools and shared-memory context
    blocks are released deterministically before returning, so repeated
    one-shot extractions never leak workers, semaphores, or ``/dev/shm``
    segments.
    """
    with FRWSolver(structure, config) as solver:
        return solver.extract(masters)
