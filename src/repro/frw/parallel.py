"""Real shared-memory executors and batch runners for walk computation.

The virtual-thread scheduler reproduces parallel *floating-point behaviour*;
this module provides actual concurrency for throughput.  The centrepiece is
:class:`PersistentExecutor`: a process or thread pool that is created once,
reused across batches *and* master conductors, and shipped each
:class:`~repro.frw.context.ExtractionContext` once — replacing the historical
pool-per-call pattern.  A batch's walk UIDs are split into chunks executed by
the pool (NumPy releases the GIL in its inner loops, so threads overlap on
multicore hosts; the process backend sidesteps the GIL entirely) and results
are reassembled in UID order, so the extraction output is bit-identical to
the serial engine — real parallelism changes wall time only, which is
exactly the DOP-independence contract of Alg. 2.

On top of the executor sit the *batch runners* used by
``extract_row_alg2``: each runner exposes ``run_batch(batch_index)`` and
differs only in how the walks are scheduled:

* :class:`SerialBatchRunner` — the historical one-batch-at-a-time engine.
* :class:`PipelinedBatchRunner` — one refill-capable
  :class:`~repro.frw.engine.WalkPipeline` spanning all batches.
* :class:`ThreadedBatchRunner` — the batch is split into UID chunks; each
  chunk owns a *slot pipeline* that persists across batches (cross-batch
  pipelining per worker), and slot tasks run on the shared thread pool.
* :class:`ProcessBatchRunner` — chunks dispatched to the persistent
  process pool, with cross-batch *dispatch pipelining*: while batch ``u``
  is being harvested, chunks of batches ``u+1 .. u+lookahead`` are already
  in flight, so the pool never drains at a batch boundary.  UIDs are a
  pure function of the batch index and results reassemble in UID order,
  so speculation trades wall time only.

The process backend ships contexts through the **shared-memory context
plane** (:mod:`repro.frw.shm`) by default: registering a context publishes
its arrays into a shared block once, and per-batch messages carry only a
small manifest + the UID chunk — workers attach lazily and cache the
attachment, so steady-state dispatch is manifest-only and works under any
start method (``fork``, ``spawn``, ``forkserver``).  The legacy
fork-inheritance protocol survives behind ``shared_context=False``.

Every path reuses the engine's slot arena across batches: the pipelined
runners own persistent :class:`~repro.frw.engine.WalkPipeline` instances
(one arena each, alive for the whole run), and chunk tasks that go through
:func:`~repro.frw.engine.run_walks` — thread-pool futures and forked
workers alike — hit its per-thread workspace cache, so steady-state batch
execution allocates no walk-state arrays anywhere.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..config import EXECUTOR_KINDS, MP_START_METHODS, FRWConfig
from ..errors import ConfigError
from . import shm
from .context import ExtractionContext
from .engine import StageTimers, WalkPipeline, WalkResults, run_walks

#: A stream spec is ``(rng_kind, seed, stream)`` — enough to rebuild a
#: per-walk stream provider anywhere (in a worker thread or a forked
#: process), which is what makes "any worker can evaluate any walk" real.
#: Antithetic configs extend it to ``(rng_kind, seed, stream, group,
#: depth)``; the 3-tuple form is kept for antithetic-off configs so their
#: dispatch payloads and worker caches stay byte-identical to before.
StreamSpec = tuple


def stream_spec(config: FRWConfig, master: int) -> StreamSpec:
    """The stream spec of one master under a config (domain-separated)."""
    if config.antithetic:
        return (
            config.rng,
            config.seed,
            master,
            config.antithetic_group,
            config.antithetic_depth,
        )
    return (config.rng, config.seed, master)


def streams_from_spec(spec: StreamSpec):
    """Build a fresh per-walk stream provider from a spec."""
    kind, seed, stream = spec[:3]
    if kind == "mt":
        from ..rng import MTWalkStreams

        return MTWalkStreams(seed, stream)
    from ..rng import WalkStreams

    streams = WalkStreams(seed, stream)
    if len(spec) == 5:
        from ..rng import MirroredDraws

        streams = MirroredDraws(streams, spec[3], spec[4])
    return streams


def resolve_workers(n_workers: int) -> int:
    """Worker count with ``0`` meaning auto.

    Auto prefers ``os.sched_getaffinity(0)`` — the CPUs this process may
    actually run on — over ``os.cpu_count()``: in containers and under
    taskset/cgroup limits the two differ, and sizing a pool by the host
    count oversubscribes the allowed cores (or, with a restricted
    ``cpu_count``, undersizes it).  Falls back to the host count where
    affinity is not exposed (macOS, Windows).
    """
    if n_workers > 0:
        return int(n_workers)
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return os.cpu_count() or 1


def resolve_start_method(method: str = "auto") -> str:
    """Concrete multiprocessing start method for the process backend.

    ``"auto"`` resolves to ``fork`` where the platform offers it (cheapest
    pool start) and ``spawn`` otherwise.  Explicit methods are validated
    against the platform's supported set.
    """
    if method not in MP_START_METHODS:
        raise ConfigError(
            f"mp_start_method must be one of {MP_START_METHODS}, got "
            f"{method!r}"
        )
    available = multiprocessing.get_all_start_methods()
    if method == "auto":
        return "fork" if "fork" in available else "spawn"
    if method not in available:  # pragma: no cover - platform dependent
        raise ConfigError(
            f"start method {method!r} is not supported on this platform "
            f"(available: {available})"
        )
    return method


def _chunk_bounds(n: int, workers: int, chunk_size: int) -> list[tuple[int, int]]:
    if chunk_size <= 0:
        chunk_size = max(64, (n + workers - 1) // max(1, workers))
    chunk_size = max(1, min(chunk_size, n)) if n else 1
    return [(start, min(start + chunk_size, n)) for start in range(0, n, chunk_size)]


def _reassemble(uids: np.ndarray, parts: list[WalkResults]) -> WalkResults:
    omega = np.concatenate([p.omega for p in parts])
    dest = np.concatenate([p.dest for p in parts])
    steps = np.concatenate([p.steps for p in parts])
    truncated = sum(p.truncated for p in parts)
    return WalkResults(
        uids=uids, omega=omega, dest=dest, steps=steps, truncated=truncated
    )


# ----------------------------------------------------------------------
# Process-pool worker side.  Two context-shipping protocols:
#
# * Shared-memory plane (default): the parent publishes each context into
#   a shared block (repro.frw.shm) and dispatches (manifest, uids) work
#   items.  Workers attach lazily — the first chunk of a context maps the
#   block and rebuilds the context over zero-copy views; every later chunk
#   hits the attachment cache.  Works under fork, spawn, and forkserver.
# * Legacy fork inheritance (shared_context=False): the parent stores
#   contexts in _FORK_REGISTRY immediately before forking the pool and
#   workers inherit that memory; per-batch messages carry only (key, uids).
# ----------------------------------------------------------------------
_LOG = logging.getLogger(__name__)

_FORK_REGISTRY: dict = {}
_WORKER_STREAMS: dict = {}


def _process_chunk(key: int, uids: np.ndarray) -> WalkResults:
    ctx, spec = _FORK_REGISTRY[key]
    streams = _WORKER_STREAMS.get(key)
    if streams is None:
        streams = streams_from_spec(spec)
        # det: allow(DET006) per-process memo of this worker's own stream
        # family; streams are counter-based (stateless per uid), so the cache
        # only avoids re-deriving keys and cannot affect sample values.
        _WORKER_STREAMS[key] = streams
    return run_walks(ctx, streams, uids)


def _shm_chunk(manifest, uids: np.ndarray) -> WalkResults:
    """Worker entry of the shared-context protocol: attach (cached), run."""
    ctx = shm.attach_context(manifest)
    cache_key = (manifest.block, manifest.spec)
    streams = _WORKER_STREAMS.get(cache_key)
    if streams is None:
        streams = streams_from_spec(manifest.spec)
        # det: allow(DET006) per-process memo of this worker's own stream
        # family; streams are counter-based (stateless per uid), so the cache
        # only avoids re-deriving keys and cannot affect sample values.
        _WORKER_STREAMS[cache_key] = streams
    return run_walks(ctx, streams, uids)


def _worker_probe(delay: float) -> tuple[int, int]:
    """Identify the executing worker: ``(pid, blocks attached so far)``.

    Each probe sleeps briefly so a ``map(..., chunksize=1)`` of one probe
    per pool slot lands on distinct workers instead of racing onto one.
    """
    time.sleep(float(delay))
    return os.getpid(), shm.attach_count()


class PendingBatch:
    """Handle to a dispatched walk batch (one UID set, maybe chunked).

    Either ``waiters`` (per-chunk blocking getters, e.g. future results)
    or ``thunk`` (a lazy whole-batch computation) backs the handle;
    :meth:`result` gathers and reassembles in UID order.  Lazy handles
    compute nothing until gathered, so speculative batches that a
    stopping rule obsoletes are free to drop.
    """

    __slots__ = ("uids", "_waiters", "_thunk", "_result")

    def __init__(self, uids: np.ndarray, waiters=None, thunk=None):
        self.uids = uids
        self._waiters = waiters
        self._thunk = thunk
        self._result: WalkResults | None = None

    def result(self) -> WalkResults:
        """Block until the batch completes; UID-ordered results."""
        if self._result is None:
            if self._waiters is not None:
                parts = [wait() for wait in self._waiters]
                self._result = (
                    parts[0]
                    if len(parts) == 1
                    else _reassemble(self.uids, parts)
                )
            else:
                self._result = self._thunk()
            self._waiters = None
            self._thunk = None
        return self._result


class PersistentExecutor:
    """A walk-execution pool created once and reused for a whole extraction.

    Parameters
    ----------
    backend:
        ``"thread"`` or ``"process"`` (``"serial"`` is accepted and makes
        :meth:`run` a plain engine call, for uniform call sites).
    n_workers:
        Pool width; ``0`` means auto (host CPU count).
    chunk_size:
        UIDs per work item; ``0`` means auto (even split over workers).

    mp_start_method:
        Start method of the process backend (``"auto"``, ``"fork"``,
        ``"spawn"``, ``"forkserver"``; see :func:`resolve_start_method`).
    shared_context:
        Ship contexts through the shared-memory plane (default): the pool
        is created once, registration publishes blocks, workers attach
        lazily, and per-batch messages carry only the manifest.  With
        ``False`` the legacy fork-inheritance protocol is used: contexts
        travel by forking *after* registration, and registering a new
        context after the fork restarts the pool once.

    Contexts are registered once per master (:meth:`register`); thereafter
    any number of batches can be dispatched with :meth:`run`.  Dispatch
    telemetry (work items, pickled payload bytes) accumulates in
    :meth:`dispatch_stats`; :meth:`worker_stats` probes the live pool for
    worker PIDs and per-worker attachment counts.
    """

    def __init__(
        self,
        backend: str = "thread",
        n_workers: int = 0,
        chunk_size: int = 0,
        mp_start_method: str = "auto",
        shared_context: bool = True,
    ):
        # Set first so __del__/close stay safe if validation below raises.
        self._closed = True
        if backend not in EXECUTOR_KINDS:
            raise ConfigError(
                f"executor backend must be one of {EXECUTOR_KINDS}, got {backend!r}"
            )
        self.backend = backend
        self.n_workers = resolve_workers(n_workers)
        self.chunk_size = int(chunk_size)
        self.mp_start_method = mp_start_method
        self.shared_context = bool(shared_context)
        if backend == "process":
            # Resolve eagerly so a bad method/platform combination fails at
            # construction, not mid-extraction.
            self._start_method = resolve_start_method(mp_start_method)
            if not self.shared_context and self._start_method != "fork":
                raise ConfigError(
                    "shared_context=False ships contexts by fork "
                    "inheritance and requires the fork start method, "
                    f"got {self._start_method!r}"
                )
        else:
            self._start_method = None
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pool = None
        self._registry: dict[int, tuple[ExtractionContext, StreamSpec]] = {}
        self._keys: dict[tuple[int, StreamSpec], int] = {}
        self._manifests: dict[int, "shm.ContextManifest"] = {}
        self._next_key = 0
        self._version = 0
        self._forked_version = -1
        self._closed = False
        self.dispatches = 0
        self.dispatch_pickle_bytes = 0

    # ------------------------------------------------------------------
    # Registration (context shipping)
    # ------------------------------------------------------------------
    def register(self, ctx: ExtractionContext, spec: StreamSpec) -> int:
        """Register a context + stream spec once; returns its dispatch key.

        On the shared-context process backend this *publishes* the context
        into a shared-memory block immediately — the pool (if any) keeps
        running and workers attach on first dispatch.  On the legacy
        fork-inheritance backend it bumps the registry version, which
        triggers one pool restart at the next dispatch.
        """
        ident = (id(ctx), spec)
        key = self._keys.get(ident)
        if key is not None:
            return key
        key = self._next_key
        self._next_key += 1
        self._registry[key] = (ctx, spec)
        self._keys[ident] = key
        self._version += 1
        if self.backend == "process" and self.shared_context:
            self._manifests[key] = shm.publish_context(ctx, spec)
        return key

    @property
    def restarts_on_register(self) -> bool:
        """Whether registering a new context forces a pool restart.

        Only the legacy fork-inheritance protocol does; the shared-memory
        context plane creates the pool once and later registrations just
        publish new blocks, which workers attach lazily.  Schedulers use
        this to decide whether in-flight handles must be drained before
        admitting a new registration wave.
        """
        return self.backend == "process" and not self.shared_context

    # ------------------------------------------------------------------
    # Pools
    # ------------------------------------------------------------------
    def _threads(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="frw-walk"
            )
        return self._thread_pool

    def _processes(self):
        if self.shared_context:
            # Shared-memory plane: one pool for the executor's lifetime.
            # Contexts live in published blocks, so registration never
            # requires a restart and any start method works.
            if self._process_pool is None:
                mp_ctx = multiprocessing.get_context(self._start_method)
                self._process_pool = mp_ctx.Pool(processes=self.n_workers)
                self._forked_version = self._version
            return self._process_pool
        if self._process_pool is None or self._forked_version != self._version:
            if self._process_pool is not None:
                self._process_pool.terminate()
                self._process_pool.join()
                self._process_pool = None
            mp_ctx = multiprocessing.get_context("fork")
            # Ship every registered context to the workers via fork
            # inheritance: set the module-level registry, then fork.
            _FORK_REGISTRY.clear()
            _FORK_REGISTRY.update(self._registry)
            self._process_pool = mp_ctx.Pool(processes=self.n_workers)
            self._forked_version = self._version
        return self._process_pool

    def submit(self, fn, *args):
        """Schedule a callable on the thread pool (slot-pipeline tasks)."""
        return self._threads().submit(fn, *args)

    # ------------------------------------------------------------------
    # Batch dispatch
    # ------------------------------------------------------------------
    def run(self, key: int, uids: np.ndarray) -> WalkResults:
        """Execute one batch of walks, reassembled in UID order."""
        return self.run_async(key, uids).result()

    def run_async(
        self, key: int, uids: np.ndarray, max_chunks: int | None = None
    ) -> "PendingBatch":
        """Dispatch one batch without blocking; returns a handle.

        The handle's :meth:`PendingBatch.result` reassembles the chunk
        results in UID order, so a gathered batch is bit-identical to the
        serial engine no matter how its chunks were scheduled.  On the
        serial fallback the handle is *lazy* — the walks run on the first
        ``result()`` call, so handles that are dropped (speculative
        batches past a stopping rule) cost nothing.

        ``max_chunks`` caps how many work items the batch splits into
        (the cross-master scheduler keeps batches whole when enough other
        masters' batches fill the pool — wide engine vectors beat fine
        chunking).  An explicit ``chunk_size`` on the executor wins over
        the cap; chunking never changes results, only the schedule.
        """
        uids = np.asarray(uids, dtype=np.uint64)
        n = uids.shape[0]
        ctx, spec = self._registry[key]
        if self.backend == "serial" or self.n_workers == 1 or n < 2:
            return PendingBatch(
                uids, thunk=lambda: run_walks(ctx, streams_from_spec(spec), uids)
            )
        if max_chunks is not None and self.chunk_size <= 0:
            max_chunks = max(1, int(max_chunks))
            bounds = _chunk_bounds(
                n, max_chunks, (n + max_chunks - 1) // max_chunks
            )
        else:
            bounds = _chunk_bounds(n, self.n_workers, self.chunk_size)
        chunks = [uids[a:b] for a, b in bounds]
        self.dispatches += len(chunks)
        if self.backend == "thread":
            futures = [
                self._threads().submit(run_walks, ctx, streams_from_spec(spec), c)
                for c in chunks
            ]
            return PendingBatch(uids, waiters=[f.result for f in futures])
        pool = self._processes()
        if self.shared_context:
            manifest = self._manifests[key]
            payloads = [(manifest, c) for c in chunks]
            worker = _shm_chunk
        else:
            payloads = [(key, c) for c in chunks]
            worker = _process_chunk
        self.dispatch_pickle_bytes += sum(
            len(pickle.dumps(p, protocol=pickle.HIGHEST_PROTOCOL))
            for p in payloads
        )
        asyncs = [pool.apply_async(worker, p) for p in payloads]
        return PendingBatch(uids, waiters=[a.get for a in asyncs])

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def dispatch_stats(self) -> dict:
        """Cumulative dispatch telemetry.

        ``pickle_bytes`` counts the pickled payload of every process-pool
        work item (the thread backend ships references, not pickles), so
        ``pickle_bytes_per_dispatch`` directly measures the steady-state
        per-dispatch payload — manifest-only under the shared-context
        plane, regardless of context size.
        """
        n = max(1, self.dispatches)
        return {
            "dispatches": self.dispatches,
            "pickle_bytes": self.dispatch_pickle_bytes,
            "pickle_bytes_per_dispatch": round(
                self.dispatch_pickle_bytes / n, 1
            ),
            "published_contexts": len(self._manifests),
            "published_nbytes": sum(
                m.nbytes for m in self._manifests.values()
            ),
        }

    def worker_stats(self, probes_per_worker: int = 4, delay: float = 0.02) -> dict:
        """Best-effort process-pool probe: worker PIDs and attach counts.

        Maps short sleep probes across the pool (``chunksize=1`` so they
        spread over workers) and reports, per observed worker PID, how many
        shared context blocks that worker has attached.  Empty for
        non-process backends.  Scheduling decides which workers answer, so
        this is telemetry — results never feed back into walk values.
        """
        if self.backend != "process":
            return {}
        pool = self._processes()
        n = max(1, self.n_workers) * max(1, int(probes_per_worker))
        rows = pool.map(_worker_probe, [delay] * n, chunksize=1)
        attaches: dict[int, int] = {}
        for pid, count in rows:
            attaches[pid] = max(count, attaches.get(pid, 0))
        pids = sorted(attaches)
        return {
            "worker_pids": pids,
            "attach_counts": {str(pid): attaches[pid] for pid in pids},
            "total_attaches": sum(attaches[pid] for pid in pids),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pools down and release published blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._process_pool is not None:
            self._process_pool.terminate()
            self._process_pool.join()
            self._process_pool = None
        # Unlink after the workers are gone: attached mappings die with
        # them, so no segment outlives the executor in /dev/shm.
        if self._manifests:
            for key in sorted(self._manifests):
                shm.release_manifest(self._manifests[key])
            self._manifests.clear()

    def __enter__(self) -> "PersistentExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except (OSError, RuntimeError, ValueError) as exc:
            # Pool teardown can race interpreter shutdown (half-collected
            # module globals, dead worker pipes).  Those failures are
            # expected here and only here; anything else should propagate.
            _LOG.debug("PersistentExecutor.__del__: close() failed: %r", exc)


# ----------------------------------------------------------------------
# Batch runners: uniform per-batch API over the scheduling strategies.
# ----------------------------------------------------------------------
def _batch_feed(batch_size: int, lo: int = 0, hi: int | None = None):
    """UID feed for ``WalkPipeline``: slice ``[lo, hi)`` of every batch."""
    hi = batch_size if hi is None else hi

    def feed(batch_index: int) -> np.ndarray:
        base = batch_index * batch_size
        return np.arange(base + lo, base + hi, dtype=np.uint64)

    return feed


class SerialBatchRunner:
    """One batch at a time through the plain engine (the historical path).

    Implemented as a *persistent* lookahead-0 :class:`WalkPipeline`: with
    no lookahead, each batch drains completely before the next one feeds,
    so the schedule — and therefore every result bit — is identical to
    calling :func:`run_walks` per batch, but the slot arena and step
    scratch are allocated once and reused for the whole run.
    """

    def __init__(
        self,
        ctx: ExtractionContext,
        streams,
        batch_size: int,
        timers: StageTimers | None = None,
        group: int = 1,
        prefetch: int | None = None,
    ):
        self.ctx = ctx
        self.streams = streams
        self.batch_size = int(batch_size)
        self._pipe = WalkPipeline(
            ctx,
            streams,
            _batch_feed(self.batch_size),
            width=self.batch_size,
            lookahead=0,
            timers=timers,
            group=group,
            prefetch=prefetch,
        )

    def run_batch(self, batch_index: int) -> WalkResults:
        return self._pipe.next_batch()

    def close(self) -> None:
        pass


class PipelinedBatchRunner:
    """A single refill pipeline spanning all batches (serial hardware)."""

    def __init__(
        self,
        ctx: ExtractionContext,
        streams,
        batch_size: int,
        lookahead: int = 1,
        timers: StageTimers | None = None,
        group: int = 1,
        prefetch: int | None = None,
    ):
        self._pipe = WalkPipeline(
            ctx,
            streams,
            _batch_feed(batch_size),
            width=batch_size,
            lookahead=lookahead,
            timers=timers,
            group=group,
            prefetch=prefetch,
        )

    def run_batch(self, batch_index: int) -> WalkResults:
        return self._pipe.next_batch()

    def close(self) -> None:
        pass


class ThreadedBatchRunner:
    """Slot pipelines over UID chunks, driven by the shared thread pool.

    The batch is split into fixed UID chunks; chunk ``i`` is owned by slot
    pipeline ``i``, which persists across batches and refills its vector
    from chunk ``i`` of the *next* batch as its walks absorb — cross-batch
    pipelining per worker.  One task per slot per batch runs on the
    executor's persistent thread pool; slot results are concatenated in
    chunk order, i.e. UID order.
    """

    def __init__(
        self,
        ctx: ExtractionContext,
        spec: StreamSpec,
        batch_size: int,
        executor: PersistentExecutor,
        pipeline: bool = True,
        lookahead: int = 1,
        timers: StageTimers | None = None,
        group: int = 1,
        prefetch: int | None = None,
    ):
        self.ctx = ctx
        self.spec = spec
        self.batch_size = int(batch_size)
        self.executor = executor
        self._bounds = _chunk_bounds(
            self.batch_size, executor.n_workers, executor.chunk_size
        )
        self._group = max(1, int(group))
        # Each slot gets a private StageTimers (no racy float accumulation
        # across pool threads); they merge into the shared one at close().
        self._timers = timers
        self._slot_timers = (
            [StageTimers() for _ in self._bounds]
            if timers is not None
            else [None] * len(self._bounds)
        )
        self._pipes: list[WalkPipeline] | None = None
        if pipeline:
            self._pipes = [
                WalkPipeline(
                    ctx,
                    streams_from_spec(spec),
                    _batch_feed(self.batch_size, a, b),
                    width=b - a,
                    lookahead=lookahead,
                    timers=tm,
                    group=self._group,
                    prefetch=prefetch,
                )
                for (a, b), tm in zip(self._bounds, self._slot_timers)
            ]

    def run_batch(self, batch_index: int) -> WalkResults:
        base = batch_index * self.batch_size
        uids = np.arange(base, base + self.batch_size, dtype=np.uint64)
        if self._pipes is not None:
            futures = [self.executor.submit(p.next_batch) for p in self._pipes]
        else:
            futures = [
                self.executor.submit(
                    run_walks,
                    self.ctx,
                    streams_from_spec(self.spec),
                    uids[a:b],
                    None,  # trace
                    tm,
                )
                for (a, b), tm in zip(self._bounds, self._slot_timers)
            ]
        parts = [f.result() for f in futures]
        return _reassemble(uids, parts)

    def close(self) -> None:
        self._pipes = None  # drop in-flight walk state; the pool is shared
        if self._timers is not None:
            for tm in self._slot_timers:
                self._timers.merge(tm)
            self._slot_timers = [StageTimers() for _ in self._bounds]


class ProcessBatchRunner:
    """Batches dispatched to the persistent process pool, pipelined across
    batch boundaries (RidgeWalker's dispatch model).

    ``run_batch(u)`` keeps up to ``lookahead`` batches beyond ``u`` in
    flight, so while batch ``u`` is being gathered the pool is already
    computing ``u+1 .. u+lookahead`` — the workers never drain at a batch
    boundary.  Batch UIDs are a pure function of the batch index and every
    batch reassembles in UID order, so speculation changes wall time only;
    batches still in flight when the stopping rule fires are counted in
    ``speculative_discarded`` (dispatched work the row never consumed).
    """

    def __init__(
        self,
        ctx: ExtractionContext,
        spec: StreamSpec,
        batch_size: int,
        executor: PersistentExecutor,
        lookahead: int = 1,
    ):
        self.batch_size = int(batch_size)
        self.executor = executor
        self.lookahead = max(0, int(lookahead))
        self._key = executor.register(ctx, spec)
        self._inflight: dict[int, PendingBatch] = {}
        self._next_dispatch = 0
        self.speculative_discarded = 0

    def _dispatch(self, batch_index: int) -> PendingBatch:
        base = batch_index * self.batch_size
        uids = np.arange(base, base + self.batch_size, dtype=np.uint64)
        return self.executor.run_async(self._key, uids)

    def run_batch(self, batch_index: int) -> WalkResults:
        target = max(batch_index + 1 + self.lookahead, batch_index + 1)
        while self._next_dispatch < target:
            self._inflight[self._next_dispatch] = self._dispatch(
                self._next_dispatch
            )
            self._next_dispatch += 1
        handle = self._inflight.pop(batch_index, None)
        if handle is None:
            # Out-of-order harvest (not used by extract_row_alg2, but the
            # runner API allows it): dispatch on demand.
            handle = self._dispatch(batch_index)
        return handle.result()

    def close(self) -> None:
        # The pool is shared and owned elsewhere; dropped handles are never
        # gathered, so the only cost of speculation is worker time already
        # spent (bounded by `lookahead` batches).
        self.speculative_discarded += len(self._inflight)
        self._inflight.clear()


def make_batch_runner(
    ctx: ExtractionContext,
    config: FRWConfig,
    executor: PersistentExecutor | None = None,
    timers: StageTimers | None = None,
):
    """Pick the batch runner for a config.

    Returns ``(runner, owned_executor)`` where ``owned_executor`` is a
    :class:`PersistentExecutor` created here (caller must close it), or
    ``None`` when the executor was supplied (e.g. by ``FRWSolver``, which
    keeps one pool alive across masters) or not needed.

    ``timers`` (optional) accumulates the engine's per-stage wall time:
    serial/pipelined runners charge it directly; the threaded runner gives
    each slot pipeline a private timer and merges them at ``close()``
    (stage seconds then sum over workers, i.e. CPU time not wall time).
    The process runner cannot report stages — the engine loops run in
    forked workers — and leaves ``timers`` untouched.
    """
    backend = config.executor
    workers = (
        executor.n_workers if executor is not None else resolve_workers(config.n_workers)
    )
    spec = stream_spec(config, ctx.master)
    group = config.antithetic_group if config.antithetic else 1
    # Threaded/serial runners get the prefetch depth explicitly; process
    # workers rebuild their pipelines from the shipped context and inherit
    # it from ``ctx.config.rng_prefetch_depth`` (prefetching is
    # bit-invisible, so the knob never needs to cross the wire separately).
    prefetch = config.rng_prefetch_depth
    owned = None
    if backend != "serial" and workers > 1 and executor is None:
        owned = PersistentExecutor(
            backend,
            config.n_workers,
            config.chunk_size,
            mp_start_method=config.mp_start_method,
            shared_context=config.shared_context,
        )
        executor = owned
    if backend == "serial" or workers <= 1 or executor is None:
        streams = streams_from_spec(spec)
        if config.pipeline:
            runner = PipelinedBatchRunner(
                ctx,
                streams,
                config.batch_size,
                config.pipeline_lookahead,
                timers=timers,
                group=group,
                prefetch=prefetch,
            )
        else:
            runner = SerialBatchRunner(
                ctx,
                streams,
                config.batch_size,
                timers=timers,
                group=group,
                prefetch=prefetch,
            )
    elif backend == "thread":
        runner = ThreadedBatchRunner(
            ctx,
            spec,
            config.batch_size,
            executor,
            pipeline=config.pipeline,
            lookahead=config.pipeline_lookahead,
            timers=timers,
            group=group,
            prefetch=prefetch,
        )
    else:
        runner = ProcessBatchRunner(
            ctx,
            spec,
            config.batch_size,
            executor,
            lookahead=config.pipeline_lookahead if config.pipeline else 0,
        )
    return runner, owned


# ----------------------------------------------------------------------
# One-shot conveniences (kept for benchmarks and direct engine use; the
# extraction path goes through PersistentExecutor + batch runners).
# ----------------------------------------------------------------------
def run_walks_parallel(
    ctx: ExtractionContext,
    streams_factory,
    uids: np.ndarray,
    n_workers: int,
    chunk_size: int | None = None,
) -> WalkResults:
    """Execute one UID batch across a short-lived thread pool.

    ``streams_factory()`` must yield a fresh stream provider per worker
    (counter streams are stateless so any number of providers agree
    bit-for-bit).  Results are reassembled in UID order.
    """
    uids = np.asarray(uids, dtype=np.uint64)
    n = uids.shape[0]
    workers = max(1, int(n_workers))
    if workers == 1 or n < 2:
        return run_walks(ctx, streams_factory(), uids)
    bounds = _chunk_bounds(n, workers, int(chunk_size or 0))
    chunks = [uids[a:b] for a, b in bounds]

    def work(chunk: np.ndarray) -> WalkResults:
        return run_walks(ctx, streams_factory(), chunk)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        parts = list(pool.map(work, chunks))
    return _reassemble(uids, parts)


def run_walks_processes(
    ctx: ExtractionContext,
    seed: int,
    stream: int,
    uids: np.ndarray,
    n_workers: int,
    chunk_size: int | None = None,
    start_method: str = "auto",
) -> WalkResults:
    """Execute one UID batch across a short-lived process pool.

    Mirrors the distributed-memory deployments of FRW solvers: workers
    share nothing but the published context (one shared-memory block) and
    the global seed; results are reassembled in UID order and are
    bit-identical to the serial engine.  Counter-based streams make this
    trivially correct — any worker can evaluate any walk.

    ``start_method`` picks the pool start method (``"auto"``, ``"fork"``,
    ``"spawn"``, ``"forkserver"``); the shared-memory context plane makes
    all of them produce identical bits on every platform that has them.
    """
    uids = np.asarray(uids, dtype=np.uint64)
    n = uids.shape[0]
    workers = max(1, int(n_workers))
    if workers == 1 or n < 2:
        from ..rng import WalkStreams

        return run_walks(ctx, WalkStreams(seed, stream), uids)
    with PersistentExecutor(
        "process", workers, int(chunk_size or 0), mp_start_method=start_method
    ) as executor:
        key = executor.register(ctx, ("philox", seed, stream))
        return executor.run(key, uids)
