"""Real shared-memory executors and batch runners for walk computation.

The virtual-thread scheduler reproduces parallel *floating-point behaviour*;
this module provides actual concurrency for throughput.  The centrepiece is
:class:`PersistentExecutor`: a process or thread pool that is created once,
reused across batches *and* master conductors, and shipped each
:class:`~repro.frw.context.ExtractionContext` once — replacing the historical
pool-per-call pattern.  A batch's walk UIDs are split into chunks executed by
the pool (NumPy releases the GIL in its inner loops, so threads overlap on
multicore hosts; the process backend sidesteps the GIL entirely) and results
are reassembled in UID order, so the extraction output is bit-identical to
the serial engine — real parallelism changes wall time only, which is
exactly the DOP-independence contract of Alg. 2.

On top of the executor sit the *batch runners* used by
``extract_row_alg2``: each runner exposes ``run_batch(batch_index)`` and
differs only in how the walks are scheduled:

* :class:`SerialBatchRunner` — the historical one-batch-at-a-time engine.
* :class:`PipelinedBatchRunner` — one refill-capable
  :class:`~repro.frw.engine.WalkPipeline` spanning all batches.
* :class:`ThreadedBatchRunner` — the batch is split into UID chunks; each
  chunk owns a *slot pipeline* that persists across batches (cross-batch
  pipelining per worker), and slot tasks run on the shared thread pool.
* :class:`ProcessBatchRunner` — chunks dispatched to the persistent fork
  pool (workers are stateless between batches, so no cross-batch
  pipelining; contexts are shipped once, at fork).

Every path reuses the engine's slot arena across batches: the pipelined
runners own persistent :class:`~repro.frw.engine.WalkPipeline` instances
(one arena each, alive for the whole run), and chunk tasks that go through
:func:`~repro.frw.engine.run_walks` — thread-pool futures and forked
workers alike — hit its per-thread workspace cache, so steady-state batch
execution allocates no walk-state arrays anywhere.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..config import EXECUTOR_KINDS, FRWConfig
from ..errors import ConfigError
from .context import ExtractionContext
from .engine import StageTimers, WalkPipeline, WalkResults, run_walks

#: A stream spec is ``(rng_kind, seed, stream)`` — enough to rebuild a
#: per-walk stream provider anywhere (in a worker thread or a forked
#: process), which is what makes "any worker can evaluate any walk" real.
StreamSpec = tuple


def stream_spec(config: FRWConfig, master: int) -> StreamSpec:
    """The stream spec of one master under a config (domain-separated)."""
    return (config.rng, config.seed, master)


def streams_from_spec(spec: StreamSpec):
    """Build a fresh per-walk stream provider from a spec."""
    kind, seed, stream = spec
    if kind == "mt":
        from ..rng import MTWalkStreams

        return MTWalkStreams(seed, stream)
    from ..rng import WalkStreams

    return WalkStreams(seed, stream)


def resolve_workers(n_workers: int) -> int:
    """Worker count with ``0`` meaning auto (the host CPU count)."""
    if n_workers > 0:
        return int(n_workers)
    return os.cpu_count() or 1


def _chunk_bounds(n: int, workers: int, chunk_size: int) -> list[tuple[int, int]]:
    if chunk_size <= 0:
        chunk_size = max(64, (n + workers - 1) // max(1, workers))
    chunk_size = max(1, min(chunk_size, n)) if n else 1
    return [(start, min(start + chunk_size, n)) for start in range(0, n, chunk_size)]


def _reassemble(uids: np.ndarray, parts: list[WalkResults]) -> WalkResults:
    omega = np.concatenate([p.omega for p in parts])
    dest = np.concatenate([p.dest for p in parts])
    steps = np.concatenate([p.steps for p in parts])
    truncated = sum(p.truncated for p in parts)
    return WalkResults(
        uids=uids, omega=omega, dest=dest, steps=steps, truncated=truncated
    )


# ----------------------------------------------------------------------
# Process-pool worker side.  Contexts are shipped once: the parent stores
# them in _FORK_REGISTRY immediately before forking the pool, and workers
# inherit that memory.  Per-batch messages then carry only (key, uids).
# ----------------------------------------------------------------------
_LOG = logging.getLogger(__name__)

_FORK_REGISTRY: dict = {}
_WORKER_STREAMS: dict = {}


def _process_chunk(key: int, uids: np.ndarray) -> WalkResults:
    ctx, spec = _FORK_REGISTRY[key]
    streams = _WORKER_STREAMS.get(key)
    if streams is None:
        streams = streams_from_spec(spec)
        # det: allow(DET006) per-process memo of this worker's own stream
        # family; streams are counter-based (stateless per uid), so the cache
        # only avoids re-deriving keys and cannot affect sample values.
        _WORKER_STREAMS[key] = streams
    return run_walks(ctx, streams, uids)


class PendingBatch:
    """Handle to a dispatched walk batch (one UID set, maybe chunked).

    Either ``waiters`` (per-chunk blocking getters, e.g. future results)
    or ``thunk`` (a lazy whole-batch computation) backs the handle;
    :meth:`result` gathers and reassembles in UID order.  Lazy handles
    compute nothing until gathered, so speculative batches that a
    stopping rule obsoletes are free to drop.
    """

    __slots__ = ("uids", "_waiters", "_thunk", "_result")

    def __init__(self, uids: np.ndarray, waiters=None, thunk=None):
        self.uids = uids
        self._waiters = waiters
        self._thunk = thunk
        self._result: WalkResults | None = None

    def result(self) -> WalkResults:
        """Block until the batch completes; UID-ordered results."""
        if self._result is None:
            if self._waiters is not None:
                parts = [wait() for wait in self._waiters]
                self._result = (
                    parts[0]
                    if len(parts) == 1
                    else _reassemble(self.uids, parts)
                )
            else:
                self._result = self._thunk()
            self._waiters = None
            self._thunk = None
        return self._result


class PersistentExecutor:
    """A walk-execution pool created once and reused for a whole extraction.

    Parameters
    ----------
    backend:
        ``"thread"`` or ``"process"`` (``"serial"`` is accepted and makes
        :meth:`run` a plain engine call, for uniform call sites).
    n_workers:
        Pool width; ``0`` means auto (host CPU count).
    chunk_size:
        UIDs per work item; ``0`` means auto (even split over workers).

    Contexts are registered once per master (:meth:`register`); thereafter
    any number of batches can be dispatched with :meth:`run`.  The process
    backend ships registered contexts to workers by forking *after*
    registration, so per-batch messages carry only ``(key, uids)``;
    registering a new context after the pool forked triggers one pool
    restart (``FRWSolver.extract`` therefore registers all masters up
    front).
    """

    def __init__(self, backend: str = "thread", n_workers: int = 0, chunk_size: int = 0):
        if backend not in EXECUTOR_KINDS:
            raise ConfigError(
                f"executor backend must be one of {EXECUTOR_KINDS}, got {backend!r}"
            )
        self.backend = backend
        self.n_workers = resolve_workers(n_workers)
        self.chunk_size = int(chunk_size)
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pool = None
        self._registry: dict[int, tuple[ExtractionContext, StreamSpec]] = {}
        self._keys: dict[tuple[int, StreamSpec], int] = {}
        self._next_key = 0
        self._version = 0
        self._forked_version = -1
        self._closed = False

    # ------------------------------------------------------------------
    # Registration (context shipping)
    # ------------------------------------------------------------------
    def register(self, ctx: ExtractionContext, spec: StreamSpec) -> int:
        """Register a context + stream spec once; returns its dispatch key."""
        ident = (id(ctx), spec)
        key = self._keys.get(ident)
        if key is not None:
            return key
        key = self._next_key
        self._next_key += 1
        self._registry[key] = (ctx, spec)
        self._keys[ident] = key
        self._version += 1
        return key

    # ------------------------------------------------------------------
    # Pools
    # ------------------------------------------------------------------
    def _threads(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="frw-walk"
            )
        return self._thread_pool

    def _processes(self):
        if self._process_pool is None or self._forked_version != self._version:
            if self._process_pool is not None:
                self._process_pool.terminate()
                self._process_pool.join()
                self._process_pool = None
            try:
                mp_ctx = multiprocessing.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX hosts
                raise ConfigError("process backend requires fork support") from exc
            # Ship every registered context to the workers via fork
            # inheritance: set the module-level registry, then fork.
            _FORK_REGISTRY.clear()
            _FORK_REGISTRY.update(self._registry)
            self._process_pool = mp_ctx.Pool(processes=self.n_workers)
            self._forked_version = self._version
        return self._process_pool

    def submit(self, fn, *args):
        """Schedule a callable on the thread pool (slot-pipeline tasks)."""
        return self._threads().submit(fn, *args)

    # ------------------------------------------------------------------
    # Batch dispatch
    # ------------------------------------------------------------------
    def run(self, key: int, uids: np.ndarray) -> WalkResults:
        """Execute one batch of walks, reassembled in UID order."""
        return self.run_async(key, uids).result()

    def run_async(
        self, key: int, uids: np.ndarray, max_chunks: int | None = None
    ) -> "PendingBatch":
        """Dispatch one batch without blocking; returns a handle.

        The handle's :meth:`PendingBatch.result` reassembles the chunk
        results in UID order, so a gathered batch is bit-identical to the
        serial engine no matter how its chunks were scheduled.  On the
        serial fallback the handle is *lazy* — the walks run on the first
        ``result()`` call, so handles that are dropped (speculative
        batches past a stopping rule) cost nothing.

        ``max_chunks`` caps how many work items the batch splits into
        (the cross-master scheduler keeps batches whole when enough other
        masters' batches fill the pool — wide engine vectors beat fine
        chunking).  An explicit ``chunk_size`` on the executor wins over
        the cap; chunking never changes results, only the schedule.
        """
        uids = np.asarray(uids, dtype=np.uint64)
        n = uids.shape[0]
        ctx, spec = self._registry[key]
        if self.backend == "serial" or self.n_workers == 1 or n < 2:
            return PendingBatch(
                uids, thunk=lambda: run_walks(ctx, streams_from_spec(spec), uids)
            )
        if max_chunks is not None and self.chunk_size <= 0:
            max_chunks = max(1, int(max_chunks))
            bounds = _chunk_bounds(
                n, max_chunks, (n + max_chunks - 1) // max_chunks
            )
        else:
            bounds = _chunk_bounds(n, self.n_workers, self.chunk_size)
        chunks = [uids[a:b] for a, b in bounds]
        if self.backend == "thread":
            futures = [
                self._threads().submit(run_walks, ctx, streams_from_spec(spec), c)
                for c in chunks
            ]
            return PendingBatch(uids, waiters=[f.result for f in futures])
        asyncs = [
            self._processes().apply_async(_process_chunk, (key, c))
            for c in chunks
        ]
        return PendingBatch(uids, waiters=[a.get for a in asyncs])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pools down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._process_pool is not None:
            self._process_pool.terminate()
            self._process_pool.join()
            self._process_pool = None

    def __enter__(self) -> "PersistentExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except (OSError, RuntimeError, ValueError) as exc:
            # Pool teardown can race interpreter shutdown (half-collected
            # module globals, dead worker pipes).  Those failures are
            # expected here and only here; anything else should propagate.
            _LOG.debug("PersistentExecutor.__del__: close() failed: %r", exc)


# ----------------------------------------------------------------------
# Batch runners: uniform per-batch API over the scheduling strategies.
# ----------------------------------------------------------------------
def _batch_feed(batch_size: int, lo: int = 0, hi: int | None = None):
    """UID feed for ``WalkPipeline``: slice ``[lo, hi)`` of every batch."""
    hi = batch_size if hi is None else hi

    def feed(batch_index: int) -> np.ndarray:
        base = batch_index * batch_size
        return np.arange(base + lo, base + hi, dtype=np.uint64)

    return feed


class SerialBatchRunner:
    """One batch at a time through the plain engine (the historical path).

    Implemented as a *persistent* lookahead-0 :class:`WalkPipeline`: with
    no lookahead, each batch drains completely before the next one feeds,
    so the schedule — and therefore every result bit — is identical to
    calling :func:`run_walks` per batch, but the slot arena and step
    scratch are allocated once and reused for the whole run.
    """

    def __init__(
        self,
        ctx: ExtractionContext,
        streams,
        batch_size: int,
        timers: StageTimers | None = None,
    ):
        self.ctx = ctx
        self.streams = streams
        self.batch_size = int(batch_size)
        self._pipe = WalkPipeline(
            ctx,
            streams,
            _batch_feed(self.batch_size),
            width=self.batch_size,
            lookahead=0,
            timers=timers,
        )

    def run_batch(self, batch_index: int) -> WalkResults:
        return self._pipe.next_batch()

    def close(self) -> None:
        pass


class PipelinedBatchRunner:
    """A single refill pipeline spanning all batches (serial hardware)."""

    def __init__(
        self,
        ctx: ExtractionContext,
        streams,
        batch_size: int,
        lookahead: int = 1,
        timers: StageTimers | None = None,
    ):
        self._pipe = WalkPipeline(
            ctx,
            streams,
            _batch_feed(batch_size),
            width=batch_size,
            lookahead=lookahead,
            timers=timers,
        )

    def run_batch(self, batch_index: int) -> WalkResults:
        return self._pipe.next_batch()

    def close(self) -> None:
        pass


class ThreadedBatchRunner:
    """Slot pipelines over UID chunks, driven by the shared thread pool.

    The batch is split into fixed UID chunks; chunk ``i`` is owned by slot
    pipeline ``i``, which persists across batches and refills its vector
    from chunk ``i`` of the *next* batch as its walks absorb — cross-batch
    pipelining per worker.  One task per slot per batch runs on the
    executor's persistent thread pool; slot results are concatenated in
    chunk order, i.e. UID order.
    """

    def __init__(
        self,
        ctx: ExtractionContext,
        spec: StreamSpec,
        batch_size: int,
        executor: PersistentExecutor,
        pipeline: bool = True,
        lookahead: int = 1,
        timers: StageTimers | None = None,
    ):
        self.ctx = ctx
        self.spec = spec
        self.batch_size = int(batch_size)
        self.executor = executor
        self._bounds = _chunk_bounds(
            self.batch_size, executor.n_workers, executor.chunk_size
        )
        # Each slot gets a private StageTimers (no racy float accumulation
        # across pool threads); they merge into the shared one at close().
        self._timers = timers
        self._slot_timers = (
            [StageTimers() for _ in self._bounds]
            if timers is not None
            else [None] * len(self._bounds)
        )
        self._pipes: list[WalkPipeline] | None = None
        if pipeline:
            self._pipes = [
                WalkPipeline(
                    ctx,
                    streams_from_spec(spec),
                    _batch_feed(self.batch_size, a, b),
                    width=b - a,
                    lookahead=lookahead,
                    timers=tm,
                )
                for (a, b), tm in zip(self._bounds, self._slot_timers)
            ]

    def run_batch(self, batch_index: int) -> WalkResults:
        base = batch_index * self.batch_size
        uids = np.arange(base, base + self.batch_size, dtype=np.uint64)
        if self._pipes is not None:
            futures = [self.executor.submit(p.next_batch) for p in self._pipes]
        else:
            futures = [
                self.executor.submit(
                    run_walks,
                    self.ctx,
                    streams_from_spec(self.spec),
                    uids[a:b],
                    None,  # trace
                    tm,
                )
                for (a, b), tm in zip(self._bounds, self._slot_timers)
            ]
        parts = [f.result() for f in futures]
        return _reassemble(uids, parts)

    def close(self) -> None:
        self._pipes = None  # drop in-flight walk state; the pool is shared
        if self._timers is not None:
            for tm in self._slot_timers:
                self._timers.merge(tm)
            self._slot_timers = [StageTimers() for _ in self._bounds]


class ProcessBatchRunner:
    """Batches dispatched to the persistent fork pool, chunked per worker."""

    def __init__(
        self,
        ctx: ExtractionContext,
        spec: StreamSpec,
        batch_size: int,
        executor: PersistentExecutor,
    ):
        self.batch_size = int(batch_size)
        self.executor = executor
        self._key = executor.register(ctx, spec)

    def run_batch(self, batch_index: int) -> WalkResults:
        base = batch_index * self.batch_size
        uids = np.arange(base, base + self.batch_size, dtype=np.uint64)
        return self.executor.run(self._key, uids)

    def close(self) -> None:
        pass  # the pool is shared and owned elsewhere


def make_batch_runner(
    ctx: ExtractionContext,
    config: FRWConfig,
    executor: PersistentExecutor | None = None,
    timers: StageTimers | None = None,
):
    """Pick the batch runner for a config.

    Returns ``(runner, owned_executor)`` where ``owned_executor`` is a
    :class:`PersistentExecutor` created here (caller must close it), or
    ``None`` when the executor was supplied (e.g. by ``FRWSolver``, which
    keeps one pool alive across masters) or not needed.

    ``timers`` (optional) accumulates the engine's per-stage wall time:
    serial/pipelined runners charge it directly; the threaded runner gives
    each slot pipeline a private timer and merges them at ``close()``
    (stage seconds then sum over workers, i.e. CPU time not wall time).
    The process runner cannot report stages — the engine loops run in
    forked workers — and leaves ``timers`` untouched.
    """
    backend = config.executor
    workers = (
        executor.n_workers if executor is not None else resolve_workers(config.n_workers)
    )
    spec = stream_spec(config, ctx.master)
    owned = None
    if backend != "serial" and workers > 1 and executor is None:
        owned = PersistentExecutor(backend, config.n_workers, config.chunk_size)
        executor = owned
    if backend == "serial" or workers <= 1 or executor is None:
        streams = streams_from_spec(spec)
        if config.pipeline:
            runner = PipelinedBatchRunner(
                ctx,
                streams,
                config.batch_size,
                config.pipeline_lookahead,
                timers=timers,
            )
        else:
            runner = SerialBatchRunner(
                ctx, streams, config.batch_size, timers=timers
            )
    elif backend == "thread":
        runner = ThreadedBatchRunner(
            ctx,
            spec,
            config.batch_size,
            executor,
            pipeline=config.pipeline,
            lookahead=config.pipeline_lookahead,
            timers=timers,
        )
    else:
        runner = ProcessBatchRunner(ctx, spec, config.batch_size, executor)
    return runner, owned


# ----------------------------------------------------------------------
# One-shot conveniences (kept for benchmarks and direct engine use; the
# extraction path goes through PersistentExecutor + batch runners).
# ----------------------------------------------------------------------
def run_walks_parallel(
    ctx: ExtractionContext,
    streams_factory,
    uids: np.ndarray,
    n_workers: int,
    chunk_size: int | None = None,
) -> WalkResults:
    """Execute one UID batch across a short-lived thread pool.

    ``streams_factory()`` must yield a fresh stream provider per worker
    (counter streams are stateless so any number of providers agree
    bit-for-bit).  Results are reassembled in UID order.
    """
    uids = np.asarray(uids, dtype=np.uint64)
    n = uids.shape[0]
    workers = max(1, int(n_workers))
    if workers == 1 or n < 2:
        return run_walks(ctx, streams_factory(), uids)
    bounds = _chunk_bounds(n, workers, int(chunk_size or 0))
    chunks = [uids[a:b] for a, b in bounds]

    def work(chunk: np.ndarray) -> WalkResults:
        return run_walks(ctx, streams_factory(), chunk)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        parts = list(pool.map(work, chunks))
    return _reassemble(uids, parts)


def run_walks_processes(
    ctx: ExtractionContext,
    seed: int,
    stream: int,
    uids: np.ndarray,
    n_workers: int,
    chunk_size: int | None = None,
) -> WalkResults:
    """Execute one UID batch across a short-lived fork pool.

    Mirrors the distributed-memory deployments of FRW solvers: workers
    share nothing but the structure (shipped once at pool start) and the
    global seed; results are reassembled in UID order and are bit-identical
    to the serial engine.  Counter-based streams make this trivially
    correct — any worker can evaluate any walk.

    Only available where ``fork`` is supported (POSIX).
    """
    uids = np.asarray(uids, dtype=np.uint64)
    n = uids.shape[0]
    workers = max(1, int(n_workers))
    if workers == 1 or n < 2:
        from ..rng import WalkStreams

        return run_walks(ctx, WalkStreams(seed, stream), uids)
    with PersistentExecutor("process", workers, int(chunk_size or 0)) as executor:
        key = executor.register(ctx, ("philox", seed, stream))
        return executor.run(key, uids)
