"""Real shared-memory executors for batch walk computation.

The virtual-thread scheduler reproduces parallel *floating-point behaviour*;
this module provides actual concurrency for throughput: a batch's walk UIDs
are split into chunks executed by a thread pool (NumPy releases the GIL in
its inner loops, so threads overlap on multicore hosts).  Results are
reassembled in UID order, so the extraction output is bit-identical to the
serial engine — real parallelism changes wall time only, which is exactly
the DOP-independence contract of Alg. 2.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..errors import ConfigError
from .context import ExtractionContext
from .engine import WalkResults, run_walks


def run_walks_parallel(
    ctx: ExtractionContext,
    streams_factory,
    uids: np.ndarray,
    n_workers: int,
    chunk_size: int | None = None,
) -> WalkResults:
    """Execute walks across a thread pool, preserving UID-order results.

    ``streams_factory()`` must yield a fresh stream provider per worker
    (counter streams are stateless so any number of providers agree
    bit-for-bit).
    """
    uids = np.asarray(uids, dtype=np.uint64)
    n = uids.shape[0]
    workers = max(1, int(n_workers))
    if workers == 1 or n < 2:
        return run_walks(ctx, streams_factory(), uids)
    if chunk_size is None:
        chunk_size = max(64, (n + workers - 1) // workers)
    chunks = [uids[start : start + chunk_size] for start in range(0, n, chunk_size)]

    def work(chunk: np.ndarray) -> WalkResults:
        return run_walks(ctx, streams_factory(), chunk)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        parts = list(pool.map(work, chunks))
    return _reassemble(uids, parts)


def _reassemble(uids: np.ndarray, parts: list[WalkResults]) -> WalkResults:
    omega = np.concatenate([p.omega for p in parts])
    dest = np.concatenate([p.dest for p in parts])
    steps = np.concatenate([p.steps for p in parts])
    truncated = sum(p.truncated for p in parts)
    return WalkResults(
        uids=uids, omega=omega, dest=dest, steps=steps, truncated=truncated
    )


# ----------------------------------------------------------------------
# Process-pool backend (distributed-memory flavour of the same contract).
# ----------------------------------------------------------------------
_PROCESS_STATE: dict = {}


def _process_init(ctx: ExtractionContext, seed: int, stream: int) -> None:
    from ..rng import WalkStreams

    _PROCESS_STATE["ctx"] = ctx
    _PROCESS_STATE["streams"] = WalkStreams(seed, stream)


def _process_chunk(uids: np.ndarray) -> WalkResults:
    return run_walks(_PROCESS_STATE["ctx"], _PROCESS_STATE["streams"], uids)


def run_walks_processes(
    ctx: ExtractionContext,
    seed: int,
    stream: int,
    uids: np.ndarray,
    n_workers: int,
    chunk_size: int | None = None,
) -> WalkResults:
    """Execute walks across worker *processes* (counter-stream based).

    Mirrors the distributed-memory deployments of FRW solvers: workers
    share nothing but the structure (shipped once at pool start) and the
    global seed; results are reassembled in UID order and are bit-identical
    to the serial engine.  Counter-based streams make this trivially
    correct — any worker can evaluate any walk.

    Only available where ``fork`` is supported (POSIX).
    """
    uids = np.asarray(uids, dtype=np.uint64)
    n = uids.shape[0]
    workers = max(1, int(n_workers))
    if workers == 1 or n < 2:
        from ..rng import WalkStreams

        return run_walks(ctx, WalkStreams(seed, stream), uids)
    try:
        mp_ctx = multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX hosts
        raise ConfigError("process backend requires fork support") from exc
    if chunk_size is None:
        chunk_size = max(64, (n + workers - 1) // workers)
    chunks = [uids[start : start + chunk_size] for start in range(0, n, chunk_size)]
    with mp_ctx.Pool(
        processes=workers, initializer=_process_init, initargs=(ctx, seed, stream)
    ) as pool:
        parts = pool.map(_process_chunk, chunks)
    return _reassemble(uids, parts)
