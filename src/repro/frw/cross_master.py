"""Cross-master interleaved extraction scheduler (Sec. IV multi-level
parallelism, realised over the real executors).

``FRWSolver.extract`` historically ran masters one after another: master
``i``'s convergence tail (a last ragged batch draining on one worker)
idled the rest of the pool while master ``i+1`` had not started.  This
module interleaves *all* masters' batch streams over the one
:class:`~repro.frw.parallel.PersistentExecutor`:

* every master keeps its own UID stream, batch order, accumulator, machine
  RNG, and Alg. 2 global checkpoints — exactly the per-master state of
  :func:`~repro.frw.alg2_reproducible.extract_row_alg2`, shared through
  :class:`~repro.frw.alg2_reproducible.RowProgress`;
* batches from different masters are dispatched concurrently — whole
  (full engine vector width) while enough masters fill the pool, chunked
  and reassembled in UID order when live masters run short of workers —
  so the pool only goes idle when *every* unconverged master's next
  batch is in flight;
* **variance-guided allocation** reweights each master's in-flight batch
  quota toward the least-converged masters after every checkpoint round
  (:func:`~repro.frw.scheduler.variance_weights`), cutting the speculative
  work thrown away when a nearly-converged master stops.

Reproducibility: a master's row is a pure function of its accumulated
batch prefix (results are schedule-independent, accumulation happens in
batch order through ``RowProgress``), and allocation only decides *which*
speculative batches are in flight — never their contents.  Every row is
therefore bit-identical to the serial per-master extraction, at any
backend, worker count, or allocation policy.

Large master sets are admitted in *waves* (``config.register_wave``): a
wave's contexts are built — and, on the process backend, registered and
shipped in one pool fork — together, so context registration is lazy but
batched.  Before a wave registers on the process backend, in-flight
batches are drained (their results are cached on the handles), because
registration re-forks the pool.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from ..config import FRWConfig
from .alg2_reproducible import RowProgress, RunStats
from .context import ExtractionContext
from .estimator import CapacitanceRow
from .parallel import (
    PendingBatch,
    PersistentExecutor,
    PipelinedBatchRunner,
    SerialBatchRunner,
    stream_spec,
    streams_from_spec,
)
from .scheduler import allocate_quota, reweight_needed, variance_weights


class _MasterRun:
    """In-flight extraction state of one master under the scheduler."""

    __slots__ = (
        "master",
        "ctx",
        "cfg",
        "progress",
        "key",
        "runner",
        "executor",
        "inflight",
        "next_dispatch",
        "next_accum",
        "done",
        "row",
        "stats",
    )

    def __init__(
        self,
        master: int,
        ctx: ExtractionContext,
        cfg: FRWConfig,
        executor: PersistentExecutor | None,
    ):
        self.master = master
        self.ctx = ctx
        self.cfg = cfg
        self.progress = RowProgress(ctx, cfg)
        self.executor = executor
        self.inflight: dict[int, PendingBatch] = {}
        self.next_dispatch = 0
        self.next_accum = 0
        self.done = False
        self.row: CapacitanceRow | None = None
        self.stats: RunStats | None = None
        spec = stream_spec(cfg, master)
        if executor is not None:
            self.key = executor.register(ctx, spec)
            self.runner = None
        else:
            # Serial fallback: a persistent per-master engine pipeline;
            # dispatch is lazy (PendingBatch thunks), so speculative
            # batches past the stopping rule are never computed.
            self.key = None
            streams = streams_from_spec(spec)
            group = cfg.antithetic_group if cfg.antithetic else 1
            if cfg.pipeline:
                self.runner = PipelinedBatchRunner(
                    ctx,
                    streams,
                    cfg.batch_size,
                    cfg.pipeline_lookahead,
                    group=group,
                )
            else:
                self.runner = SerialBatchRunner(
                    ctx, streams, cfg.batch_size, group=group
                )

    def dispatch_next(self, max_chunks: int | None = None) -> None:
        """Put this master's next batch in flight (UIDs are fixed by the
        batch index, so dispatch order across masters is irrelevant).

        ``max_chunks`` caps intra-batch splitting: with many masters in
        flight the pool is already full of whole batches, and full-width
        engine vectors beat fine chunking (chunking never changes the
        row — only the schedule)."""
        u = self.next_dispatch
        base = u * self.cfg.batch_size
        uids = np.arange(base, base + self.cfg.batch_size, dtype=np.uint64)
        if self.executor is not None:
            handle = self.executor.run_async(self.key, uids, max_chunks)
        else:
            runner = self.runner
            handle = PendingBatch(uids, thunk=lambda: runner.run_batch(u))
        self.inflight[u] = handle
        self.next_dispatch = u + 1
        self.progress.stats.dispatched_batches += 1

    def harvest_next(self) -> bool:
        """Absorb the next in-order batch; returns ``True`` when the
        stopping rule fired (remaining in-flight batches are discarded)."""
        handle = self.inflight.pop(self.next_accum)
        self.next_accum += 1
        if self.progress.absorb(handle.result()):
            self.done = True
            self.progress.stats.discarded_batches += len(self.inflight)
            self.inflight.clear()
            if self.runner is not None:
                self.runner.close()
                self.runner = None
            self.row, self.stats = self.progress.finalize()
        return self.done


def resolve_wave(register_wave: int, n_workers: int) -> int:
    """Masters admitted per scheduler wave (0 = auto)."""
    if register_wave > 0:
        return register_wave
    return max(8, 2 * n_workers)


def extract_rows_interleaved(
    masters: list[int],
    config: FRWConfig,
    context_for: Callable[[int], ExtractionContext],
    executor: PersistentExecutor | None = None,
    thread_overrides: dict[int, int] | None = None,
) -> tuple[list[CapacitanceRow], list[RunStats]]:
    """Extract all masters' rows as one interleaved batch stream.

    ``context_for`` supplies (and may cache) per-master contexts —
    typically ``FRWSolver.context``.  ``thread_overrides`` maps a master
    to the virtual-thread DOP its accumulation replays at (multi-level
    group plans); walk samples are DOP-independent, so overrides move
    only the last floating-point bits, exactly as in the serial path.

    Returns ``(rows, stats)`` aligned with ``masters``; every row is
    bit-identical to ``extract_row_alg2`` run per master with the same
    per-master config.
    """
    workers = executor.n_workers if executor is not None else 1
    wave = resolve_wave(config.register_wave, workers)
    overrides = thread_overrides or {}

    def master_config(master: int) -> FRWConfig:
        t = overrides.get(master)
        if t is None or t == config.n_threads:
            return config
        return config.with_(n_threads=max(1, t))

    pending = deque(masters)
    active: list[_MasterRun] = []

    def activate_wave() -> None:
        live = sum(1 for st in active if not st.done)
        take = min(wave - live, len(pending))
        if take <= 0:
            return
        if executor is not None and executor.restarts_on_register:
            # Legacy fork-inheritance protocol: registration re-forks the
            # pool, so drain in-flight batches first — no handle may be
            # left pointing into a terminated pool.  Results are cached on
            # the handles, nothing is recomputed.  The shared-memory
            # context plane never restarts, so no drain is needed there
            # and admission stays overlap-free.
            for st in active:
                for handle in st.inflight.values():
                    handle.result()
        for _ in range(take):
            m = pending.popleft()
            active.append(
                _MasterRun(m, context_for(m), master_config(m), executor)
            )

    activate_wave()
    # Hysteresis state of the variance policy: the weight vector and quota
    # split of the last recomputation, plus the live set it applied to.
    last_weights: np.ndarray | None = None
    last_quotas: np.ndarray | None = None
    last_live: tuple[int, ...] = ()
    while True:
        live = [st for st in active if not st.done]
        if not live:
            if not pending:
                break
            activate_wave()
            live = [st for st in active if not st.done]

        # Allocation round: decide each live master's in-flight quota.
        if executor is None:
            # Serial dispatch is lazy — speculation is free but useless,
            # so one (never-computed-until-harvest) batch per master.
            quotas = np.ones(len(live), dtype=np.int64)
        else:
            total = config.max_inflight_batches
            if total <= 0:
                total = max(len(live), 2 * workers)
            if config.allocation == "variance" and len(live) > 1:
                weights = variance_weights(
                    np.array(
                        [st.progress.self_relative_error for st in live]
                    ),
                    config.tolerance,
                )
                live_ids = tuple(st.master for st in live)
                if live_ids != last_live or reweight_needed(
                    weights, last_weights, config.allocation_hysteresis
                ):
                    last_quotas = allocate_quota(weights, total, min_share=1)
                    last_weights = weights
                    last_live = live_ids
                quotas = last_quotas
            else:
                weights = np.ones(len(live))
                quotas = allocate_quota(weights, total, min_share=1)
        # Cross-master concurrency already fills the pool, so a batch
        # only splits when live masters are fewer than workers.
        max_chunks = -(-workers // len(live))
        for st, quota in zip(live, quotas):
            st.progress.stats.allocation_rounds += 1
            while len(st.inflight) < quota:
                st.dispatch_next(max_chunks)

        # Harvest round: every live master absorbs its next in-order
        # batch and runs its own global checkpoint.
        finished_any = False
        for st in live:
            if st.harvest_next():
                finished_any = True
        if finished_any and pending:
            activate_wave()

    by_master = {st.master: st for st in active}
    rows = [by_master[m].row for m in masters]
    stats = [by_master[m].stats for m in masters]
    return rows, stats
