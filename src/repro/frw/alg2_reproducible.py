"""Alg. 2 — the parallel FRW scheme with DOP-independent reproducibility.

Walks are issued in globally numbered batches of ``B``; each walk's random
stream is a pure function of its ID (fine-grained reseeding, realised here
with counter-based streams so reseeding is free); batches are dynamically
scheduled over ``T`` threads with per-thread accumulators merged at a global
checkpoint where the stopping criterion is evaluated.  Because the *set* of
executed walks at every checkpoint is `{0 .. uB-1}` regardless of ``T``, the
result differs across DOPs only through floating-point summation order —
which Kahan accumulation compresses to the last one or two digits.

The vectorised engine computes all walk outcomes of a batch at once (this
is exact: outcomes are schedule-independent by construction), then the
virtual-thread simulation replays the dynamic-queue accumulation order so
the floating-point behaviour matches a real ``T``-thread execution,
including merge order and machine timing noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import FRWConfig
from ..rng import (
    MirroredDraws,
    MTWalkStreams,
    WalkStreams,
    seeded_generator,
    splitmix64,
)
from .context import ExtractionContext, build_context
from .estimator import CapacitanceRow, RowAccumulator
from .parallel import PersistentExecutor, make_batch_runner
from .scheduler import jittered_durations, simulate_dynamic_queue


@dataclass
class RunStats:
    """Bookkeeping of one row extraction (for Table III / Fig. 5)."""

    walks: int = 0
    batches: int = 0
    total_steps: int = 0
    truncated: int = 0
    wall_time: float = 0.0
    converged: bool = False
    #: Accumulated per-thread work (jittered step counts) across batches.
    thread_work: np.ndarray = field(default_factory=lambda: np.zeros(1))
    #: Accumulated batch makespans (modeled parallel time units).
    makespan: float = 0.0
    #: Cross-master schedule telemetry: batches submitted to the executor
    #: for this master (``>= batches`` when speculation ran ahead).
    dispatched_batches: int = 0
    #: Speculative batches dispatched but never accumulated (discarded when
    #: the stopping rule fired; their walk samples are simply unused).
    discarded_batches: int = 0
    #: Allocation rounds this master participated in (interleaved mode).
    allocation_rounds: int = 0

    @property
    def parallel_efficiency(self) -> float:
        """Load-balance efficiency of the simulated schedule."""
        if self.makespan == 0.0:
            return 1.0
        return float(self.thread_work.sum()) / (
            self.thread_work.shape[0] * self.makespan
        )

    @property
    def speculation_ratio(self) -> float:
        """Fraction of dispatched batches that were discarded."""
        if self.dispatched_batches == 0:
            return 0.0
        return self.discarded_batches / self.dispatched_batches


def make_streams(config: FRWConfig, master: int):
    """Per-walk stream provider for the configured RNG kind.

    Each master conductor gets an independent stream family (domain
    separation), so multi-level parallelism cannot collide streams.
    """
    if config.rng == "mt":
        return MTWalkStreams(config.seed, stream=master)
    streams = WalkStreams(config.seed, stream=master)
    if config.antithetic:
        # Antithetic partners re-read their primary's counter words
        # through a mirroring view; config validation guarantees philox.
        streams = MirroredDraws(
            streams, config.antithetic_group, config.antithetic_depth
        )
    return streams


def machine_rng(config: FRWConfig, master: int) -> np.random.Generator:
    """The simulated machine's timing-noise RNG (never affects samples)."""
    return seeded_generator(
        splitmix64(config.machine_seed * 0x10001 + master + 1)
    )


class RowProgress:
    """Streaming accumulate-and-checkpoint state of one row extraction.

    This is the *only* implementation of the per-batch accumulation and
    the Alg. 2 global checkpoint: both :func:`extract_row_alg2` and the
    cross-master interleaved scheduler feed batch results through it, so
    a master's row is bit-identical under any batch execution schedule by
    construction — provided batches are absorbed in batch-index order
    (the machine RNG and the virtual-thread replay consume them in that
    order).
    """

    def __init__(self, ctx: ExtractionContext, config: FRWConfig | None = None):
        cfg = config if config is not None else ctx.config
        self.ctx = ctx
        self.cfg = cfg
        self.acc = RowAccumulator(
            ctx.n_conductors,
            ctx.master,
            summation=cfg.summation,
            group_size=cfg.antithetic_group if cfg.antithetic else 1,
        )
        self.rng_machine = machine_rng(cfg, ctx.master)
        self.stats = RunStats(thread_work=np.zeros(cfg.n_threads))
        self.done = False
        self._t_start = time.perf_counter()

    @property
    def self_relative_error(self) -> float:
        """Current relative half-width of the diagonal entry."""
        return self.acc.self_relative_error

    def absorb(self, results) -> bool:
        """Accumulate one batch (in batch order) and run the checkpoint.

        Returns ``True`` when the stopping rule fired (converged or walk
        cap reached); further batches for this master must be discarded.
        """
        cfg = self.cfg
        acc = self.acc
        stats = self.stats
        durations = jittered_durations(
            results.steps, self.rng_machine, cfg.scheduler_jitter
        )
        schedule = simulate_dynamic_queue(durations, cfg.n_threads)
        if cfg.antithetic:
            # Group-mean accumulation needs whole UID-aligned groups, so
            # it always consumes the batch in UID order regardless of
            # deterministic_merge (the virtual-thread replay would split
            # groups across simulated threads); the schedule still feeds
            # the Fig. 5 load-balance model.  Batches are whole multiples
            # of the group (batch_size % antithetic_group == 0, enforced
            # at config validation), so groups never straddle a batch.
            acc.add_group_batch(results.omega, results.dest, results.steps)
        elif cfg.deterministic_merge:
            # Extension: accumulate in walk-ID order for guaranteed
            # bitwise reproducibility; the schedule still feeds the
            # Fig. 5 model.
            acc.add_batch(results.omega, results.dest, results.steps)
        else:
            for thread_order in schedule.thread_order:
                local = acc.spawn()
                local.add_walks_ordered(
                    results.omega[thread_order],
                    results.dest[thread_order],
                    results.steps[thread_order],
                )
                acc.merge(local)
        stats.thread_work += schedule.thread_work
        stats.makespan += schedule.makespan
        stats.truncated += results.truncated
        stats.batches += 1

        # The global checkpoint (Alg. 2 line 11).
        walks = acc.walks
        if walks >= cfg.min_walks and acc.self_relative_error < cfg.tolerance:
            stats.converged = True
            self.done = True
        elif walks >= cfg.max_walks:
            self.done = True
        return self.done

    def finalize(self) -> tuple[CapacitanceRow, RunStats]:
        """Freeze the totals and return ``(row, stats)``."""
        self.stats.walks = self.acc.walks
        self.stats.total_steps = self.acc.total_steps
        self.stats.wall_time = time.perf_counter() - self._t_start
        return self.acc.row(), self.stats


def extract_row_alg2(
    ctx: ExtractionContext,
    config: FRWConfig | None = None,
    executor: PersistentExecutor | None = None,
    timers=None,
) -> tuple[CapacitanceRow, RunStats]:
    """Extract one capacitance-matrix row with the reproducible scheme.

    Walk batches are produced by a batch runner selected from the config's
    ``executor`` / ``pipeline`` knobs (serial engine, cross-batch pipeline,
    thread slot-pipelines, or the persistent process pool).  Every runner
    yields per-batch results in UID order, so the accumulated row is
    bit-identical across all of them — the scheduling knobs trade wall time
    only.  Pass ``executor`` (e.g. from :class:`~repro.frw.solver.FRWSolver`)
    to reuse one pool across masters; otherwise a pool is created and closed
    here when the config calls for one.  ``timers`` (an optional
    :class:`~repro.frw.engine.StageTimers`) collects the engine's per-stage
    breakdown where the runner supports it (see
    :func:`~repro.frw.parallel.make_batch_runner`).
    """
    cfg = config if config is not None else ctx.config
    progress = RowProgress(ctx, cfg)
    runner, owned = make_batch_runner(ctx, cfg, executor, timers=timers)

    try:
        batch_index = 0
        while True:
            results = runner.run_batch(batch_index)
            progress.stats.dispatched_batches += 1
            batch_index += 1
            if progress.absorb(results):
                break
    finally:
        runner.close()
        if owned is not None:
            owned.close()

    # Pipelined process dispatch may leave speculative batches in flight
    # when the stopping rule fires; the runner counts them at close().
    # They were dispatched work the row never consumed — account them so
    # the speculation telemetry matches the cross-master scheduler's.
    discarded = int(getattr(runner, "speculative_discarded", 0))
    if discarded:
        progress.stats.dispatched_batches += discarded
        progress.stats.discarded_batches += discarded

    return progress.finalize()


def extract_row_alg2_from_structure(
    structure, master: int, config: FRWConfig
) -> tuple[CapacitanceRow, RunStats]:
    """Convenience wrapper that builds the context first."""
    return extract_row_alg2(build_context(structure, master, config))
