"""Capacitance estimators: per-destination weight accumulators.

A walk from master ``i`` that ends on conductor ``k`` with weight ``omega``
is, simultaneously, a sample of *every* ``X_ij``: ``x_ij = omega * [k = j]``
(Sec. II-B).  The accumulator therefore keeps, per destination conductor,
the sum of weights and of squared weights plus a hit count; means divide by
the total walk count ``M`` and the variance of each mean follows Eq. (9).

The summation backend is pluggable (Kahan or naive) because the paper's
FRW-NK ablation differs from FRW-R exactly here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..numerics.summation import KahanVector, NaiveVector


@dataclass(frozen=True)
class CapacitanceRow:
    """One extracted row of the Maxwell capacitance matrix.

    ``values[j]`` estimates ``C_master,j`` in fF; ``sigma2[j]`` is the
    Eq. (9) variance of that mean; ``hits[j]`` counts absorbed walks.
    """

    master: int
    values: np.ndarray
    sigma2: np.ndarray
    hits: np.ndarray
    walks: int
    total_steps: int

    @property
    def self_capacitance(self) -> float:
        """The diagonal entry C_ii."""
        return float(self.values[self.master])

    @property
    def self_relative_error(self) -> float:
        """Relative standard error of C_ii (the paper's stopping metric)."""
        c = self.values[self.master]
        if c == 0.0:
            return math.inf
        return math.sqrt(max(self.sigma2[self.master], 0.0)) / abs(c)


class RowAccumulator:
    """Streaming accumulator for one master conductor's row."""

    def __init__(self, n_conductors: int, master: int, summation: str = "kahan"):
        vector_cls = KahanVector if summation == "kahan" else NaiveVector
        self.master = master
        self.n_conductors = n_conductors
        self.summation = summation
        self.sum_w = vector_cls(n_conductors)
        self.sum_w2 = vector_cls(n_conductors)
        self.hits = np.zeros(n_conductors, dtype=np.int64)
        self.walks = 0
        self.total_steps = 0

    def spawn(self) -> "RowAccumulator":
        """A fresh accumulator with the same configuration (thread-local)."""
        return RowAccumulator(self.n_conductors, self.master, self.summation)

    def add_walk(self, omega: float, dest: int, steps: int = 0) -> None:
        """Accumulate a single walk (scalar hot path of the simulator)."""
        self.sum_w.add_at(dest, omega)
        self.sum_w2.add_at(dest, omega * omega)
        self.hits[dest] += 1
        self.walks += 1
        self.total_steps += steps

    def add_walks_ordered(
        self, omega: np.ndarray, dest: np.ndarray, steps: np.ndarray | None = None
    ) -> None:
        """Accumulate walks in the given array order, vectorised.

        Bit-identical to calling :meth:`add_walk` once per element in array
        order (per-destination slots are independent, so the summation
        backends replay each slot's subsequence sequentially), but without
        the per-walk Python call overhead.  This is the hot path of the
        virtual-thread merge replay.
        """
        omega = np.asarray(omega, dtype=np.float64)
        dest = np.asarray(dest, dtype=np.int64)
        self.sum_w.add_ordered(dest, omega)
        self.sum_w2.add_ordered(dest, omega * omega)
        np.add.at(self.hits, dest, 1)
        self.walks += int(dest.shape[0])
        if steps is not None:
            self.total_steps += int(np.sum(steps))

    def add_batch(
        self, omega: np.ndarray, dest: np.ndarray, steps: np.ndarray | None = None
    ) -> None:
        """Accumulate a batch in array order (deterministic-merge mode).

        Partial sums per destination are formed with ``np.add.at`` (a fixed
        left-to-right order over the input arrays) and merged once into the
        compensated accumulator, so the result is independent of how walks
        were scheduled — provided callers pass walks in UID order.
        """
        omega = np.asarray(omega, dtype=np.float64)
        dest = np.asarray(dest, dtype=np.int64)
        part_w = np.zeros(self.n_conductors, dtype=np.float64)
        part_w2 = np.zeros(self.n_conductors, dtype=np.float64)
        np.add.at(part_w, dest, omega)
        np.add.at(part_w2, dest, omega * omega)
        self.sum_w.add(part_w)
        self.sum_w2.add(part_w2)
        np.add.at(self.hits, dest, 1)
        self.walks += int(dest.shape[0])
        if steps is not None:
            self.total_steps += int(np.sum(steps))

    def merge(self, other: "RowAccumulator") -> None:
        """Absorb another accumulator (e.g. a thread-local partial)."""
        self.sum_w.merge(other.sum_w)
        self.sum_w2.merge(other.sum_w2)
        self.hits += other.hits
        self.walks += other.walks
        self.total_steps += other.total_steps

    def row(self) -> CapacitanceRow:
        """Current estimates as a :class:`CapacitanceRow`."""
        m = self.walks
        sum_w = self.sum_w.value
        sum_w2 = self.sum_w2.value
        if m == 0:
            values = np.zeros(self.n_conductors)
            sigma2 = np.full(self.n_conductors, np.inf)
        else:
            values = sum_w / m
            if m < 2:
                sigma2 = np.full(self.n_conductors, np.inf)
            else:
                ss = np.maximum(sum_w2 - m * values * values, 0.0)
                sigma2 = ss / (m * (m - 1))
        return CapacitanceRow(
            master=self.master,
            values=values,
            sigma2=sigma2,
            hits=self.hits.copy(),
            walks=m,
            total_steps=self.total_steps,
        )

    @property
    def self_relative_error(self) -> float:
        """Relative standard error of the diagonal entry, cheaply."""
        m = self.walks
        if m < 2:
            return math.inf
        sw = self.sum_w.value[self.master]
        sw2 = self.sum_w2.value[self.master]
        if sw == 0.0:
            return math.inf
        mean = sw / m
        ss = max(sw2 - m * mean * mean, 0.0)
        return math.sqrt(ss / (m * (m - 1))) / abs(mean)
