"""Capacitance estimators: per-destination weight accumulators.

A walk from master ``i`` that ends on conductor ``k`` with weight ``omega``
is, simultaneously, a sample of *every* ``X_ij``: ``x_ij = omega * [k = j]``
(Sec. II-B).  The accumulator therefore keeps, per destination conductor,
the sum of weights and of squared weights plus a hit count; means divide by
the total walk count ``M`` and the variance of each mean follows Eq. (9).

The summation backend is pluggable (Kahan or naive) because the paper's
FRW-NK ablation differs from FRW-R exactly here.

**Antithetic (grouped) accumulation.**  With ``group_size > 1`` the
accumulator switches to per-group means: walks arrive in UID order as
aligned groups of ``group_size`` antithetically coupled partners, and what
enters the sum/sum-of-squares registers is each group's *mean* weight
vector, not the raw per-walk weights.  The mean estimate is algebraically
unchanged (mean of complete group means == raw mean), but the variance
must be computed over group means: walks inside a group are deliberately
anticorrelated, so the raw per-walk sample variance over-counts the
information and Eq. (9) applied to it would be *biased* (it would report
the variance an independent sample of the same size would have, hiding the
antithetic gain from the stopping rule — and from Alg. 3's regularizer).
Treating each group mean as one i.i.d. observation (they are: disjoint UID
blocks, independent Philox words) restores the textbook unbiased variance
of the mean with ``m = number of groups``; this is the merged mean/variance
algebra of Healy (PAPERS.md) applied at group granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..numerics.summation import KahanVector, NaiveVector


@dataclass(frozen=True)
class CapacitanceRow:
    """One extracted row of the Maxwell capacitance matrix.

    ``values[j]`` estimates ``C_master,j`` in fF; ``sigma2[j]`` is the
    Eq. (9) variance of that mean; ``hits[j]`` counts absorbed walks.
    """

    master: int
    values: np.ndarray
    sigma2: np.ndarray
    hits: np.ndarray
    walks: int
    total_steps: int

    @property
    def self_capacitance(self) -> float:
        """The diagonal entry C_ii."""
        return float(self.values[self.master])

    @property
    def self_relative_error(self) -> float:
        """Relative standard error of C_ii (the paper's stopping metric)."""
        c = self.values[self.master]
        if c == 0.0:
            return math.inf
        return math.sqrt(max(self.sigma2[self.master], 0.0)) / abs(c)


class RowAccumulator:
    """Streaming accumulator for one master conductor's row.

    With ``group_size > 1`` the sum registers hold sums of *group means*
    (see the module docstring); ``walks`` always counts raw walks, and
    sample counts for mean/variance use ``walks // group_size`` complete
    groups.  Grouped accumulation happens only through
    :meth:`add_group_batch`; the per-walk paths refuse to run grouped so
    the two bookkeeping schemes can never silently mix.
    """

    def __init__(
        self,
        n_conductors: int,
        master: int,
        summation: str = "kahan",
        group_size: int = 1,
    ):
        if group_size < 1:
            raise ConfigError(f"group_size must be >= 1, got {group_size}")
        vector_cls = KahanVector if summation == "kahan" else NaiveVector
        self.master = master
        self.n_conductors = n_conductors
        self.summation = summation
        self.group_size = int(group_size)
        self.sum_w = vector_cls(n_conductors)
        self.sum_w2 = vector_cls(n_conductors)
        self.hits = np.zeros(n_conductors, dtype=np.int64)
        self.walks = 0
        self.total_steps = 0

    def spawn(self) -> "RowAccumulator":
        """A fresh accumulator with the same configuration (thread-local)."""
        return RowAccumulator(
            self.n_conductors, self.master, self.summation, self.group_size
        )

    def _require_ungrouped(self, caller: str) -> None:
        if self.group_size != 1:
            raise ConfigError(
                f"{caller} accumulates raw per-walk weights; a grouped "
                f"accumulator (group_size={self.group_size}) must use "
                "add_group_batch so sum registers stay in group-mean units"
            )

    def add_walk(self, omega: float, dest: int, steps: int = 0) -> None:
        """Accumulate a single walk (scalar hot path of the simulator)."""
        self._require_ungrouped("add_walk")
        self.sum_w.add_at(dest, omega)
        self.sum_w2.add_at(dest, omega * omega)
        self.hits[dest] += 1
        self.walks += 1
        self.total_steps += steps

    def add_walks_ordered(
        self, omega: np.ndarray, dest: np.ndarray, steps: np.ndarray | None = None
    ) -> None:
        """Accumulate walks in the given array order, vectorised.

        Bit-identical to calling :meth:`add_walk` once per element in array
        order (per-destination slots are independent, so the summation
        backends replay each slot's subsequence sequentially), but without
        the per-walk Python call overhead.  This is the hot path of the
        virtual-thread merge replay.
        """
        self._require_ungrouped("add_walks_ordered")
        omega = np.asarray(omega, dtype=np.float64)
        dest = np.asarray(dest, dtype=np.int64)
        self._check_batch(omega, dest)
        self.sum_w.add_ordered(dest, omega)
        self.sum_w2.add_ordered(dest, omega * omega)
        np.add.at(self.hits, dest, 1)
        self.walks += int(dest.shape[0])
        if steps is not None:
            self.total_steps += int(np.sum(steps))

    def add_batch(
        self, omega: np.ndarray, dest: np.ndarray, steps: np.ndarray | None = None
    ) -> None:
        """Accumulate a batch in array order (deterministic-merge mode).

        Partial sums per destination are formed with ``np.add.at`` (a fixed
        left-to-right order over the input arrays) and merged once into the
        compensated accumulator, so the result is independent of how walks
        were scheduled — provided callers pass walks in UID order.
        """
        self._require_ungrouped("add_batch")
        omega = np.asarray(omega, dtype=np.float64)
        dest = np.asarray(dest, dtype=np.int64)
        self._check_batch(omega, dest)
        part_w = np.zeros(self.n_conductors, dtype=np.float64)
        part_w2 = np.zeros(self.n_conductors, dtype=np.float64)
        np.add.at(part_w, dest, omega)
        np.add.at(part_w2, dest, omega * omega)
        self.sum_w.add(part_w)
        self.sum_w2.add(part_w2)
        np.add.at(self.hits, dest, 1)
        self.walks += int(dest.shape[0])
        if steps is not None:
            self.total_steps += int(np.sum(steps))

    def add_group_batch(
        self, omega: np.ndarray, dest: np.ndarray, steps: np.ndarray | None = None
    ) -> None:
        """Accumulate a UID-ordered batch of complete antithetic groups.

        ``omega``/``dest`` must cover whole groups: element ``g *
        group_size + k`` is partner ``k`` of group ``g``.  Each group's
        mean weight vector (its weight on each destination, divided by
        ``group_size``) enters the compensated accumulators as one
        observation; ``hits``/``walks``/``total_steps`` keep raw per-walk
        counts.  Like :meth:`add_batch` the partial sums are formed with
        ``np.add.at`` over the input order, so the result depends only on
        the UID order — not the schedule that produced the batch.
        """
        g = self.group_size
        if g < 2:
            raise ConfigError(
                "add_group_batch requires a grouped accumulator "
                f"(group_size >= 2), got group_size={g}"
            )
        omega = np.asarray(omega, dtype=np.float64)
        dest = np.asarray(dest, dtype=np.int64)
        self._check_batch(omega, dest)
        n = dest.shape[0]
        if n % g != 0:
            raise ConfigError(
                f"add_group_batch needs whole groups: {n} walks is not a "
                f"multiple of group_size {g}"
            )
        n_groups = n // g
        gm = np.zeros((n_groups, self.n_conductors), dtype=np.float64)
        rows = np.repeat(np.arange(n_groups, dtype=np.int64), g)
        np.add.at(gm, (rows, dest), omega)
        gm /= g
        self.sum_w.add(gm.sum(axis=0))
        self.sum_w2.add((gm * gm).sum(axis=0))
        np.add.at(self.hits, dest, 1)
        self.walks += int(n)
        if steps is not None:
            self.total_steps += int(np.sum(steps))

    def merge(self, other: "RowAccumulator") -> None:
        """Absorb another accumulator (e.g. a thread-local partial).

        Both sides must agree on the full accumulator configuration —
        summation mode, conductor count, master, and group size.  Mixing
        (say) a Kahan global with a naive partial, or raw-walk sums with
        group-mean sums, would silently corrupt the registers; it now
        raises :class:`~repro.errors.ConfigError` instead.
        """
        if not isinstance(other, RowAccumulator):
            raise ConfigError(
                f"merge expects a RowAccumulator, got {type(other).__name__}"
            )
        if other.summation != self.summation:
            raise ConfigError(
                f"merge: summation mode mismatch ({self.summation!r} vs "
                f"{other.summation!r})"
            )
        if other.n_conductors != self.n_conductors:
            raise ConfigError(
                f"merge: conductor count mismatch ({self.n_conductors} vs "
                f"{other.n_conductors})"
            )
        if other.master != self.master:
            raise ConfigError(
                f"merge: master mismatch ({self.master} vs {other.master})"
            )
        if other.group_size != self.group_size:
            raise ConfigError(
                f"merge: group_size mismatch ({self.group_size} vs "
                f"{other.group_size})"
            )
        self.sum_w.merge(other.sum_w)
        self.sum_w2.merge(other.sum_w2)
        self.hits += other.hits
        self.walks += other.walks
        self.total_steps += other.total_steps

    def _check_batch(self, omega: np.ndarray, dest: np.ndarray) -> None:
        if omega.shape[0] != dest.shape[0]:
            raise ConfigError(
                f"omega/dest length mismatch: {omega.shape[0]} vs "
                f"{dest.shape[0]}"
            )
        if dest.shape[0] and (
            int(dest.min()) < 0 or int(dest.max()) >= self.n_conductors
        ):
            raise ConfigError(
                f"dest indices out of range for {self.n_conductors} "
                "conductors"
            )

    @property
    def samples(self) -> int:
        """Independent observations held: groups if grouped, else walks."""
        return self.walks // self.group_size

    def row(self) -> CapacitanceRow:
        """Current estimates as a :class:`CapacitanceRow`.

        Grouped accumulators divide by the group count (the registers
        hold group-mean sums — the resulting mean equals the raw walk
        mean) and report the unbiased variance *of the group means*,
        which is what the stopping rule and Alg. 3 must consume under
        antithetic coupling.
        """
        m = self.samples
        sum_w = self.sum_w.value
        sum_w2 = self.sum_w2.value
        if m == 0:
            values = np.zeros(self.n_conductors)
            sigma2 = np.full(self.n_conductors, np.inf)
        else:
            values = sum_w / m
            if m < 2:
                sigma2 = np.full(self.n_conductors, np.inf)
            else:
                ss = np.maximum(sum_w2 - m * values * values, 0.0)
                sigma2 = ss / (m * (m - 1))
        return CapacitanceRow(
            master=self.master,
            values=values,
            sigma2=sigma2,
            hits=self.hits.copy(),
            walks=self.walks,
            total_steps=self.total_steps,
        )

    @property
    def self_relative_error(self) -> float:
        """Relative standard error of the diagonal entry, cheaply."""
        m = self.samples
        if m < 2:
            return math.inf
        sw = self.sum_w.value[self.master]
        sw2 = self.sum_w2.value[self.master]
        if sw == 0.0:
            return math.inf
        mean = sw / m
        ss = max(sw2 - m * mean * mean, 0.0)
        return math.sqrt(ss / (m * (m - 1))) / abs(mean)
