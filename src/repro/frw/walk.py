"""Scalar reference walk and walk-path tracing (Fig. 2).

The scalar path simply runs the vectorised engine on a single-element batch
— by construction the engine's per-walk outcomes are independent of
batching, and the test suite asserts bitwise equality between scalar and
batched execution.  ``trace_walks`` records full step-by-step positions for
visualisation and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alg2_reproducible import make_streams
from .context import ExtractionContext
from .engine import run_walks


@dataclass(frozen=True)
class WalkTrace:
    """One traced walk: its positions per step and outcome."""

    uid: int
    positions: np.ndarray  # (steps+1, 3)
    omega: float
    dest: int

    @property
    def n_hops(self) -> int:
        """Number of transitions taken."""
        return self.positions.shape[0] - 1


def run_single_walk(
    ctx: ExtractionContext, uid: int
) -> tuple[float, int, int]:
    """Execute one walk; returns ``(omega, destination, steps)``."""
    streams = make_streams(ctx.config, ctx.master)
    res = run_walks(ctx, streams, np.array([uid], dtype=np.uint64))
    return float(res.omega[0]), int(res.dest[0]), int(res.steps[0])


def trace_walks(ctx: ExtractionContext, uids: list[int]) -> list[WalkTrace]:
    """Run a handful of walks recording every position (for Fig. 2)."""
    streams = make_streams(ctx.config, ctx.master)
    uid_arr = np.array(uids, dtype=np.uint64)
    trace: list = []
    res = run_walks(ctx, streams, uid_arr, trace=trace)
    paths: dict[int, list[np.ndarray]] = {i: [] for i in range(len(uids))}
    for active, pos in trace:
        for row, walk in enumerate(active):
            paths[int(walk)].append(pos[row])
    return [
        WalkTrace(
            uid=int(uid_arr[i]),
            positions=np.array(paths[i]),
            omega=float(res.omega[i]),
            dest=int(res.dest[i]),
        )
        for i in range(len(uids))
    ]
