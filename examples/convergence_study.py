"""Convergence study: the 1/sqrt(M) law and tolerance planning.

Traces the self-capacitance estimate and its relative standard error as the
walk count grows, fits the error-decay exponent (should be ~ -1/2, the
paper's Sec. II-B convergence guarantee), and extrapolates the walks needed
for a target tolerance.

Run:  python examples/convergence_study.py
"""

from repro import FRWConfig
from repro.analysis import trace_convergence, walks_for_tolerance
from repro.frw import build_context
from repro.structures import build_case


def main() -> None:
    structure = build_case(1, "fast")
    ctx = build_context(structure, 0, FRWConfig.frw_r(seed=17))
    print(f"tracing convergence of C11 for {structure.names[0]} ...\n")
    trace = trace_convergence(ctx, total_walks=80_000, checkpoints=16)

    print(f"{'walks':>8} {'C11 (fF)':>12} {'rel. std. err.':>15}")
    for m, c, e in zip(trace.walks, trace.estimate, trace.rel_error):
        bar = "#" * int(min(40, 400 * e))
        print(f"{m:>8} {c:>12.5f} {e:>14.2%}  {bar}")

    slope = trace.error_decay_exponent()
    print(f"\nfitted error decay: error ~ M^{slope:.2f}   (theory: M^-0.50)")
    for tol in (1e-2, 1e-3):
        need = walks_for_tolerance(trace, tol)
        print(f"walks needed for {tol:.0%} self-cap error: ~{need:,}")


if __name__ == "__main__":
    main()
