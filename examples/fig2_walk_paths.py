"""Render example floating-random-walk paths (the paper's Fig. 2).

Traces a handful of walks from the Gaussian surface of a master conductor
to their absorbing conductors and writes an SVG cross-section.

Run:  python examples/fig2_walk_paths.py
"""

from repro.analysis.tables import format_table
from repro.experiments import fig2_walks


def main() -> None:
    record = fig2_walks.run(case=1, n_walks=8, seed=12)
    print(
        format_table(
            record.headers, record.rows, title="Example walks (case 1, master w1)"
        )
    )
    for note in record.notes:
        print(note)


if __name__ == "__main__":
    main()
