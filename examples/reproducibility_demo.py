"""Reproducibility demo: why Alg. 2 beats the Alg. 1 baseline.

Runs the same extraction at different degrees of parallelism (DOP) and on
two simulated machines, for both the baseline scheme of [1] (Alg. 1) and
the paper's reproducible scheme (Alg. 2 / FRW-R), then reports how many
decimal digits the results share.

Run:  python examples/reproducibility_demo.py
"""

from repro import FRWConfig, FRWSolver, reproducibility_indices
from repro.structures import build_case, case_masters


def repeated_runs(structure, masters, factory, dops, machines):
    """Extract once per (DOP, machine) combination; return the matrices."""
    matrices = []
    for t, machine in zip(dops, machines):
        config = factory(
            seed=7,                 # the input seed never changes
            n_threads=t,
            machine_seed=machine,   # simulated machine timing noise
            tolerance=2e-2,
            batch_size=2000,
            min_walks=2000,
        )
        result = FRWSolver(structure, config).extract(masters)
        matrices.append(result.matrix.values)
        print(
            f"    T={t:>2} machine={machine}: "
            f"C11 = {result.matrix.values[0, 0]:.15f} fF"
        )
    return matrices


def main() -> None:
    structure = build_case(1, "fast")
    masters = case_masters(structure)
    dops = [1, 4, 16, 7]
    machines = [0, 1, 2, 3]

    print("Alg. 1 baseline [1] — varied DOP:")
    alg1 = repeated_runs(structure, masters, FRWConfig.alg1, dops, machines)
    stats1 = reproducibility_indices(alg1)
    print(f"  -> {stats1}  (the results are statistically different!)\n")

    print("FRW-R (Alg. 2, fine-grained reseeding + Kahan) — varied DOP:")
    frw_r = repeated_runs(structure, masters, FRWConfig.frw_r, dops, machines)
    stats2 = reproducibility_indices(frw_r)
    print(f"  -> {stats2}  (17 = bitwise identical)\n")

    print("FRW-R with deterministic merge (library extension):")
    det = repeated_runs(
        structure,
        masters,
        lambda **kw: FRWConfig.frw_r(deterministic_merge=True, **kw),
        dops,
        machines,
    )
    stats3 = reproducibility_indices(det)
    print(f"  -> {stats3}  (guaranteed 17 for any DOP)")


if __name__ == "__main__":
    main()
