"""Full extraction flow on the VCO-like analog structure (Table I case 3).

Demonstrates the complete Fig. 1 pipeline: structure -> parallel
reproducible extraction -> raw result with property violations -> Alg. 3
regularization -> reliable matrix, saved to JSON for downstream tools.

Run:  python examples/vco_full_flow.py
"""

from pathlib import Path

from repro import FRWConfig, FRWSolver
from repro.reliability import check_properties
from repro.structures import build_case, case_masters


def main() -> None:
    structure = build_case(3, "fast")
    masters = case_masters(structure)
    print(structure.summary())
    print(f"extracting {len(masters)} masters "
          f"({', '.join(structure.names[m] for m in masters[:6])}, ...)")

    config = FRWConfig.frw_rr(
        seed=42,
        n_threads=16,
        tolerance=3e-2,
        batch_size=4000,
    )
    result = FRWSolver(structure, config).extract(masters)

    raw_report = check_properties(result.raw_matrix)
    reg_report = check_properties(result.matrix)
    print("\nphysics-related reliability (Sec. II-A properties):")
    print(f"  raw FRW output : {raw_report}")
    print(f"  after Alg. 3   : {reg_report}")
    print(f"  regularization took {result.regularization_time * 1e3:.1f} ms "
          f"for {result.matrix.meta['n_variables']} capacitances")

    # The regularized matrix is safe for circuit simulation / macromodels:
    # symmetric, diagonally dominant with non-positive couplings, zero row
    # sums. Save it for downstream use.
    out = Path("results")
    out.mkdir(exist_ok=True)
    path = out / "vco_capacitance.json"
    result.matrix.save(path)
    print(f"\nreliable capacitance matrix written to {path}")

    # Show the strongest couplings of the first inductor turn.
    row = result.matrix.values[0]
    names = structure.names
    couplings = sorted(
        ((row[j], names[j]) for j in range(len(names)) if j != 0),
        key=lambda x: x[0],
    )
    print("\nstrongest couplings of ind1:")
    for value, name in couplings[:5]:
        print(f"  C(ind1, {name:>10}) = {value:9.4f} fF")


if __name__ == "__main__":
    main()
