"""Multi-level parallelism on the SRAM array (Table I case 5, Sec. III-C).

With many master conductors, splitting T threads into groups that extract
different masters concurrently scales further than per-master parallelism
alone — and, because every master owns an independent stream family, the
capacitance values are unchanged.  This example extracts a scaled SRAM
array both ways and compares values and modeled runtimes.

Run:  python examples/sram_scaling.py
"""

import numpy as np

from repro import FRWConfig, FRWSolver, multilevel_extract
from repro.numerics import matrix_matched_digits
from repro.structures import case_masters, sram_like


def main() -> None:
    structure = sram_like(rows=2, cols=4)
    masters = case_masters(structure)
    print(structure.summary())
    print(f"{len(masters)} masters (wordlines, bitline pairs, cell stubs)\n")

    config = FRWConfig.frw_rr(
        seed=5, n_threads=16, tolerance=4e-2, batch_size=3000
    )
    solver = FRWSolver(structure, config)

    print("single-level: all 16 threads on one master at a time ...")
    single = solver.extract(masters)
    span_single = sum(float(s.thread_work.max()) for s in single.stats)

    print("multi-level : 4 groups x 4 threads across masters ...")
    multi = multilevel_extract(
        FRWSolver(structure, config), masters, min_threads_per_group=4
    )
    # Groups run concurrently: the modeled span is the max over groups.
    group_spans: dict[int, float] = {}
    for master, stat in zip(masters, multi.stats):
        group = master % 4
        group_spans[group] = group_spans.get(group, 0.0) + float(
            stat.thread_work.max()
        )
    span_multi = max(group_spans.values())

    digits = matrix_matched_digits(single.matrix.values, multi.matrix.values)
    print(f"\nvalues match to {digits} decimal digits "
          "(same walks, different scheduling)")
    print(f"modeled span, single-level : {span_single:,.0f} work units")
    print(f"modeled span, multi-level  : {span_multi:,.0f} work units "
          f"({span_single / span_multi:.2f}x better utilisation)")
    print(f"\nreliability after Alg. 3: {multi.report}")


if __name__ == "__main__":
    main()
