"""Define a structure in JSON, extract it, and export a SPICE netlist.

The end-to-end flow a downstream tool would script: structures as data,
reproducible extraction, reliability regularization, netlist out.

Run:  python examples/custom_structure_json.py
"""

import json
from pathlib import Path

from repro import FRWConfig, FRWSolver
from repro.analysis import to_spice_subckt
from repro.geometry import load_structure

DOCUMENT = {
    "conductors": [
        {"name": "sig_a", "boxes": [[0.0, 0.0, 1.0, 1.0, 8.0, 2.0]]},
        {"name": "sig_b", "boxes": [[2.5, 0.0, 1.0, 3.5, 8.0, 2.0]]},
        {
            # An L-shaped net drawn as two overlapping boxes: a vertical
            # arm beside sig_a and a horizontal bar south of both signals.
            "name": "shield",
            "boxes": [
                [-2.5, -3.2, 1.0, -1.5, 8.0, 2.0],
                [-2.5, -3.2, 1.0, 6.0, -2.2, 2.0],
            ],
        },
    ],
    "dielectric": {"interfaces": [0.4], "eps": [3.9, 2.7]},
    "enclosure": [-7.0, -5.0, -3.0, 8.5, 13.0, 6.5],
}


def main() -> None:
    path = Path("results")
    path.mkdir(exist_ok=True)
    doc_path = path / "custom_structure.json"
    doc_path.write_text(json.dumps(DOCUMENT, indent=1))

    structure = load_structure(doc_path)
    structure.validate(min_gap=0.2)
    print(structure.summary())

    config = FRWConfig.frw_rr(seed=99, n_threads=8, tolerance=2e-2)
    result = FRWSolver(structure, config).extract()
    print(result.matrix.pretty())
    print(f"reliable: {result.report.reliable}")

    netlist = to_spice_subckt(result.matrix, name="custom_block")
    sp_path = path / "custom_block.sp"
    sp_path.write_text(netlist)
    print(f"\nSPICE netlist ({sp_path}):\n{netlist}")


if __name__ == "__main__":
    main()
