"""Quickstart: extract the capacitance matrix of three parallel wires.

Builds a small custom structure with the public API, extracts it with the
reproducible + reliable solver (FRW-RR), checks the physical properties,
and cross-validates against the built-in FDM reference field solver.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Box,
    Conductor,
    FDMExtractor,
    FRWConfig,
    FRWSolver,
    Structure,
    check_properties,
)


def main() -> None:
    # --- 1. Describe the geometry (lengths in um) --------------------------
    # Three 1x1 um wires, 1 um apart, 8 um long, inside a grounded box.
    wires = [
        Conductor.single(
            f"w{i + 1}", Box.from_bounds(2.0 * i, 2.0 * i + 1.0, 0.0, 8.0, 0.0, 1.0)
        )
        for i in range(3)
    ]
    structure = Structure(
        wires, enclosure=Box.from_bounds(-4, 9, -4, 12, -4, 5)
    )
    structure.validate(min_gap=0.5)
    print(structure.summary())

    # --- 2. Extract with FRW-RR -------------------------------------------
    config = FRWConfig.frw_rr(
        seed=2025,          # any run with this seed reproduces bit-for-bit
        n_threads=16,       # DOP does not change the result (Alg. 2)
        tolerance=1e-2,     # 1% standard error on self-capacitances
    )
    result = FRWSolver(structure, config).extract()
    print("\nCapacitance matrix (fF):")
    print(result.matrix.pretty())
    print(f"\nwalks: {result.total_walks}, wall: {result.wall_time:.2f}s, "
          f"regularization: {result.regularization_time * 1e3:.2f}ms")
    print(f"properties: {check_properties(result.matrix)}")

    # --- 3. Cross-check against the FDM reference solver -------------------
    print("\nFDM reference (this is the 'commercial tool' stand-in):")
    fdm = FDMExtractor(structure, resolution=(53, 65, 37), method="cg").extract()
    frw_row = result.matrix.values[0]
    fdm_row = fdm.capacitance[0]
    print(f"  FRW-RR row w1: {np.array2string(frw_row, precision=4)}")
    print(f"  FDM    row w1: {np.array2string(fdm_row, precision=4)}")
    rel = np.abs(frw_row - fdm_row).sum() / np.abs(fdm_row).sum()
    print(f"  weighted difference: {rel * 100:.2f}% "
          "(MC error + FDM discretisation error)")


if __name__ == "__main__":
    main()
