"""Sec. IV-C in practice: application-specific regularization variants.

Touchscreen-style flows care about specific mutual couplings and do not
need the zero row-sum property; IC sign-off flows want self-capacitances
pinned.  This example contrasts, on one raw extraction:

* plain Alg. 3 (full constrained MLE),
* symmetrization-only (the exact MLE without Property 3 — Eq. 13),
* diagonal-weighted Alg. 3 (self-capacitances pinned),
* the naive diagonal-replacement adjustment the paper warns against.

Run:  python examples/touchscreen_symmetrization.py
"""

import numpy as np

from repro import (
    FRWConfig,
    FRWSolver,
    naive_adjustment,
    regularize,
    symmetrize,
)
from repro.reliability import check_properties
from repro.structures import parallel_wires


def describe(tag, matrix, raw):
    report = check_properties(matrix)
    diag_shift = np.abs(
        np.diag(matrix.master_block) - np.diag(raw.master_block)
    ).max()
    print(
        f"  {tag:<22} Err2={report.err2:8.1e}  Err3={report.err3:8.1e}  "
        f"max self-cap shift={diag_shift:8.2e} fF"
    )


def main() -> None:
    # A touch-sensor-flavoured pattern: a grid of sense/drive bars.
    structure = parallel_wires(n_wires=6, width=1.2, spacing=0.8, length=14.0)
    config = FRWConfig.frw_r(seed=9, n_threads=8, tolerance=2e-2)
    result = FRWSolver(structure, config).extract()
    raw = result.matrix
    print("raw extraction:")
    describe("(none)", raw, raw)

    print("\npost-processing variants:")
    describe("Alg. 3 (full MLE)", regularize(raw), raw)
    describe("symmetrize only", symmetrize(raw), raw)
    describe("Alg. 3, diag x100", regularize(raw, diagonal_weight=100.0), raw)
    describe("naive adjustment", naive_adjustment(raw), raw)

    print(
        "\nnotes: symmetrization fixes Err2 only and never touches the\n"
        "diagonal; weighted Alg. 3 keeps all properties while pinning the\n"
        "self-capacitances; the naive adjustment rewrites the diagonal\n"
        "entirely from (noisy) couplings — the failure mode Sec. IV warns\n"
        "about."
    )


if __name__ == "__main__":
    main()
