"""Multi-master extraction benchmark — emits BENCH_extract.json.

Measures the end-to-end wall time of a full multi-master ``extract()`` on
a multi-conductor bus case in three schedules at the *same* worker count:

* ``serial_masters``       — the historical master-after-master loop
  (``interleave_masters=False``): one master's convergence tail idles the
  pool while the next master waits.
* ``interleaved_even``     — the cross-master scheduler with an even
  in-flight quota per unconverged master.
* ``interleaved_variance`` — the cross-master scheduler with
  variance-guided allocation (quota reweighted toward the
  least-converged masters when the share vector moves past the
  ``allocation_hysteresis`` threshold).

Both allocation policies are recorded on every run so the trajectory
tracks the gap between them (the default is ``even``; variance-guided
allocation must earn its keep here to be worth switching back on).

All three produce bit-identical capacitance rows (asserted here on every
run); the schedules trade wall time and speculative overshoot only.  The
entry also records the per-master schedule telemetry (dispatched /
discarded batches), the shared-asset cache counters — the structure's
spatial index must be built exactly once per extraction — and the spatial
index's query telemetry (far-field hit rate, candidates pruned).

The entry also records a **worker-scaling** section: the same extraction
on the serial engine and on the shared-memory process backend
(``--process-workers`` workers, default 4), with the executor's dispatch
telemetry — per-dispatch pickle bytes (the steady-state message is
``(manifest, uids)``, a few KB regardless of structure size) and
per-worker context attach counts (each worker attaches each published
block exactly once).  Process rows are asserted bit-identical to the
serial rows; the walks/sec ratio is recorded honestly — on a single-core
host the process backend *loses* to serial (pure dispatch overhead, no
parallel speedup), and the trajectory says so.

With ``--walks-to-tolerance`` the entry additionally records a
**walks_to_tolerance** section: the same bus extraction driven to a fixed
``Err_cap`` target with antithetic sampling off and on (group 2, depth 1
— the headline configuration), recording walks and wall seconds for each
and the walk-reduction ratio.  Both runs are asserted unsaturated (the
stopping rule, not ``max_walks``, must end them — a saturated comparison
would be meaningless) and a ``::warning::`` annotation is emitted when
the walk reduction drops below 1.2x so CI flags a variance-reduction
regression without failing on noisy runner timing.

Every entry carries a ``host_cpus`` field (the CPUs this process may
actually run on — affinity/cgroup aware), so scaling numbers recorded on
1-CPU hosts (like PR 6's 0.62x ``process_w4``) are self-describing in
the trajectory.

The output file is a *trajectory*: every invocation appends a timestamped
entry (git revision, host info) to the ``runs`` list, so the perf history
is tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_extract.py [-o BENCH_extract.json]
        [--walks-to-tolerance]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import time
from datetime import datetime, timezone

import numpy as np

from repro import Box, Conductor, FRWConfig, FRWSolver, Structure

SEED = 9
BATCH = 1024
N_WIRES = 5
N_WORKERS = 4


def build_bus(n_wires: int = N_WIRES) -> Structure:
    """A parallel-wire bus: ``n_wires`` masters over a common enclosure."""
    wires = [
        Conductor.single(
            f"w{i}", Box.from_bounds(2.0 * i, 2.0 * i + 1.0, 0, 8, 0, 1)
        )
        for i in range(n_wires)
    ]
    hi = 2.0 * n_wires + 3.0
    return Structure(
        wires, enclosure=Box.from_bounds(-4, hi, -4, 12, -4, 5)
    )


def _config(**overrides) -> FRWConfig:
    return FRWConfig.frw_r(
        seed=SEED,
        n_threads=4,
        batch_size=BATCH,
        min_walks=2 * BATCH,
        max_walks=8 * BATCH,
        tolerance=1.5e-2,
        executor="thread",
        n_workers=N_WORKERS,
        **overrides,
    )


def run_schedule(structure: Structure, name: str, cfg: FRWConfig, repeats: int = 3):
    """Best-of-N wall time for one schedule; returns (entry, result)."""
    best = float("inf")
    result = None
    solver_stats = None
    for _ in range(repeats):
        with FRWSolver(structure, cfg) as solver:
            t0 = time.perf_counter()
            res = solver.extract()
            secs = time.perf_counter() - t0
            if secs < best:
                best, result = secs, res
                solver_stats = solver.assets.stats()
    sched = result.matrix.meta["schedule"]
    entry = {
        "seconds": round(best, 6),
        "walks": result.total_walks,
        "steps": result.total_steps,
        "walks_per_sec": round(result.total_walks / best, 1),
        "dispatched_batches": sched["dispatched_batches"],
        "discarded_batches": sched["discarded_batches"],
        "asset_cache": solver_stats,
        "query_stats": sched.get("query_stats"),
    }
    print(
        f"{name:22s} {best * 1e3:9.1f} ms   "
        f"{entry['walks_per_sec']:>10.0f} walks/s   "
        f"dispatched {entry['dispatched_batches']:>3d}   "
        f"discarded {entry['discarded_batches']:>3d}"
    )
    return entry, result


def run_worker_scaling(structure: Structure, process_workers: int):
    """Serial vs shared-memory process backend at the same extraction.

    Returns the scaling entry; asserts the process rows are byte-equal to
    the serial rows (the shared-context plane must be bit-invisible).
    """
    entries = {}
    serial_cfg = _config().with_(executor="serial")
    with FRWSolver(structure, serial_cfg) as solver:
        t0 = time.perf_counter()
        serial_res = solver.extract()
        serial_secs = time.perf_counter() - t0
    entries["serial"] = {
        "seconds": round(serial_secs, 6),
        "walks": serial_res.total_walks,
        "walks_per_sec": round(serial_res.total_walks / serial_secs, 1),
    }
    print(
        f"{'scaling serial':22s} {serial_secs * 1e3:9.1f} ms   "
        f"{entries['serial']['walks_per_sec']:>10.0f} walks/s"
    )

    proc_cfg = _config().with_(
        executor="process", n_workers=process_workers
    )
    with FRWSolver(structure, proc_cfg) as solver:
        t0 = time.perf_counter()
        proc_res = solver.extract()
        proc_secs = time.perf_counter() - t0
        executor = solver.walk_executor()
        dispatch = executor.dispatch_stats()
        workers = executor.worker_stats()
    key = f"process_w{process_workers}"
    entries[key] = {
        "seconds": round(proc_secs, 6),
        "walks": proc_res.total_walks,
        "walks_per_sec": round(proc_res.total_walks / proc_secs, 1),
        "dispatch": dispatch,
        "workers": workers,
    }
    print(
        f"{'scaling ' + key:22s} {proc_secs * 1e3:9.1f} ms   "
        f"{entries[key]['walks_per_sec']:>10.0f} walks/s   "
        f"pickle/dispatch {dispatch['pickle_bytes_per_dispatch']:>7.0f} B   "
        f"attaches {workers.get('total_attaches', 0)}"
    )

    assert np.array_equal(
        proc_res.raw_matrix.values, serial_res.raw_matrix.values
    ), "process rows differ from serial"
    entries["process_vs_serial"] = round(
        entries[key]["walks_per_sec"] / entries["serial"]["walks_per_sec"], 3
    )
    return entries


#: walks-to-tolerance section parameters: the target must be *reachable*
#: well inside the walk cap, otherwise both runs saturate at max_walks and
#: the comparison measures nothing.
TOL_TARGET = 3e-2
TOL_MAX_WALKS = 262144
TOL_BATCH = 512


def run_walks_to_tolerance(structure: Structure) -> dict:
    """Walks and wall time to a fixed ``Err_cap``, antithetic off vs on.

    Runs serially (walk counts are executor-invariant, and serial timing
    is the least noisy on shared runners).  Asserts neither run saturated
    ``max_walks``; emits a ``::warning::`` annotation if the walk
    reduction falls below 1.2x.
    """
    entries = {}
    for name, overrides in [
        ("antithetic_off", {}),
        ("antithetic_on", {"antithetic": True}),
    ]:
        cfg = _config(**overrides).with_(
            batch_size=TOL_BATCH,
            min_walks=2 * TOL_BATCH,
            max_walks=TOL_MAX_WALKS,
            tolerance=TOL_TARGET,
            executor="serial",
        )
        with FRWSolver(structure, cfg) as solver:
            t0 = time.perf_counter()
            res = solver.extract()
            secs = time.perf_counter() - t0
        assert res.converged, (
            f"{name} saturated max_walks={TOL_MAX_WALKS} before reaching "
            f"Err_cap={TOL_TARGET}; raise the cap or loosen the target"
        )
        entry = {
            "walks": res.total_walks,
            "seconds": round(secs, 6),
            "err_cap": round(
                max(r.self_relative_error for r in res.rows), 6
            ),
            "converged": res.converged,
        }
        if overrides:
            entry["group"] = cfg.antithetic_group
            entry["depth"] = cfg.antithetic_depth
        entries[name] = entry
        print(
            f"{'tolerance ' + name:22s} {secs * 1e3:9.1f} ms   "
            f"{res.total_walks:>8d} walks to Err_cap {TOL_TARGET:g}"
        )

    off, on = entries["antithetic_off"], entries["antithetic_on"]
    entries["tolerance"] = TOL_TARGET
    entries["walk_reduction"] = round(off["walks"] / on["walks"], 3)
    entries["time_reduction"] = round(off["seconds"] / on["seconds"], 3)
    print(
        f"walks-to-tolerance reduction: {entries['walk_reduction']}x walks, "
        f"{entries['time_reduction']}x wall time"
    )
    if entries["walk_reduction"] < 1.2:
        print(
            "::warning::antithetic walk reduction "
            f"{entries['walk_reduction']}x is below the 1.2x floor "
            f"({off['walks']} -> {on['walks']} walks at "
            f"Err_cap {TOL_TARGET:g})"
        )
    return entries


def _host_cpus() -> int:
    """CPUs this process may run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux host
        return os.cpu_count() or 1


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - no git on host
        return "unknown"


def _load_trajectory(path: str) -> dict:
    header = {
        "benchmark": "extract_cross_master",
        "n_wires": N_WIRES,
        "batch_size": BATCH,
        "n_workers": N_WORKERS,
        "runs": [],
    }
    if not os.path.exists(path):
        return header
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return header
    if "runs" in payload:
        payload.setdefault("benchmark", "extract_cross_master")
        return payload
    return header


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_extract.json")
    parser.add_argument("--wires", type=int, default=N_WIRES)
    parser.add_argument(
        "--process-workers",
        type=int,
        default=N_WORKERS,
        help="worker count for the worker-scaling process-backend run",
    )
    parser.add_argument(
        "--walks-to-tolerance",
        action="store_true",
        help="also record the walks-to-tolerance section "
        "(antithetic off vs on at a fixed Err_cap target)",
    )
    args = parser.parse_args()

    structure = build_bus(args.wires)
    results = {}
    matrices = {}
    for name, cfg in [
        ("serial_masters", _config(interleave_masters=False)),
        ("interleaved_even", _config(allocation="even")),
        ("interleaved_variance", _config(allocation="variance")),
    ]:
        entry, res = run_schedule(structure, name, cfg)
        results[name] = entry
        matrices[name] = res.raw_matrix.values
        # The structure index must be built exactly once per extraction.
        assert entry["asset_cache"]["index_builds"] == 1, entry["asset_cache"]

    base = matrices["serial_masters"]
    for name, values in matrices.items():
        assert np.array_equal(values, base), f"{name} rows differ from serial"
    print("all schedules bit-identical to serial-masters rows")

    scaling = run_worker_scaling(structure, args.process_workers)

    tolerance_section = None
    if args.walks_to_tolerance:
        tolerance_section = run_walks_to_tolerance(structure)

    speedups = {
        "interleaved_vs_serial_masters": round(
            results["serial_masters"]["seconds"]
            / results["interleaved_variance"]["seconds"],
            3,
        ),
        "variance_vs_even_allocation": round(
            results["interleaved_even"]["seconds"]
            / results["interleaved_variance"]["seconds"],
            3,
        ),
    }
    print("speedups:", speedups)

    trajectory = _load_trajectory(args.output)
    entry = {
        # det: allow(DET002) intentional wall-clock: benchmark trajectory
        # entries are timestamped metadata, never an input to computation.
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "host": {
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "host_cpus": _host_cpus(),
        "results": results,
        "worker_scaling": scaling,
        "speedups": speedups,
        "bit_identical": True,
    }
    if tolerance_section is not None:
        entry["walks_to_tolerance"] = tolerance_section
    trajectory["runs"].append(entry)
    with open(args.output, "w") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"appended run {len(trajectory['runs'])} to {args.output}")


if __name__ == "__main__":
    main()
