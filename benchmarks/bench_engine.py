"""Engine throughput benchmark — emits BENCH_engine.json.

Measures walks/sec and steps/sec of the extraction hot path so future
changes can track the trajectory:

* ``engine_plain``        — per-batch ``run_walks`` (the seed's engine path).
* ``engine_pipelined``    — cross-batch ``run_walks_pipelined`` (refilled
  vector, same walks, bit-identical results) with the spatial fast path
  at its defaults.
* ``engine_pipelined_nofast`` — the same engine with the far-field fast
  path disabled (``far_field=False`` picks the pre-fast-path index), so
  the fast path's net effect on this case is visible in one entry.
* ``extract_seed_style``  — full ``extract_row`` with the seed's
  scheduling: per-batch engine + per-walk scalar merge replay.
* ``extract_default``     — full ``extract_row_alg2`` with the current
  defaults (pipelined engine + vectorised ordered merge replay; the
  thread/process executors engage automatically on multi-core hosts).
* ``open_field`` / ``open_field_nofast`` — the pipelined engine on an
  *open-field-dominated* case: thin wires in a roomy enclosure with a
  small ``h_cap`` so most steps are capped far-field steps, which is the
  workload the tier-1 bounds exist for.
* ``open_field_prefetch1`` — the same open-field case with the RNG
  prefetch ring disabled (``rng_prefetch_depth=1``), so the layer-8
  dispatch-amortisation win is visible as
  ``speedups.rng_prefetch_open_field`` in every entry (the walk bytes
  are identical — prefetching is bit-invisible).

**Every** variant reports the engine's per-stage timing breakdown
(rng / index_fast / index / sample / retire / bookkeeping) from
:class:`~repro.frw.engine.StageTimers` — seconds *and* per-stage kernel
dispatch counts — and the spatial index's far-field hit rate, so a
regression is attributable to a stage, not just a total.

The output file is a *trajectory*: every invocation appends a timestamped
entry (with git revision and host info) to the ``runs`` list instead of
overwriting the snapshot, so the perf history is tracked across PRs.  A
pre-trajectory single-snapshot file is converted into the first run on the
next append.  ``--warn-regression`` compares the fresh entry's
``engine_pipelined`` steps/sec against the previous trajectory entry and
prints a GitHub ``::warning::`` annotation when it regressed by more than
20% — warn-only, for noisy CI runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [-o BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import time
from datetime import datetime, timezone

import numpy as np

from repro import Box, Conductor, FRWConfig, Structure
from repro.frw import (
    StageTimers,
    build_context,
    extract_row_alg2,
    run_walks,
    run_walks_pipelined,
)
from repro.frw.alg2_reproducible import machine_rng, make_streams
from repro.frw.estimator import RowAccumulator
from repro.frw.scheduler import jittered_durations, simulate_dynamic_queue
from repro.rng import WalkStreams
from repro.structures import build_case

BATCH = 2048
N_BATCHES = 4
SEED = 9

# The open-field case: thin wires in a roomy enclosure with a small cap,
# so ~2/3 of all step queries land in provably-far cells.
OPEN_WALKS = 32768
OPEN_WIDTH = 8192
OPEN_H_CAP_FRACTION = 0.05
REGRESSION_WARN = 0.20


def build_open_field() -> Structure:
    """Three thin wires in a large empty enclosure."""
    wires = [
        Conductor.single(
            f"w{i}", Box.from_bounds(2.0 * i, 2.0 * i + 1.0, 0, 8, 0, 1)
        )
        for i in range(3)
    ]
    return Structure(
        wires, enclosure=Box.from_bounds(-20, 25, -20, 28, -20, 21)
    )


def _far_field_rate(ctx) -> float | None:
    stats = getattr(ctx.index, "stats", None)
    return None if stats is None else round(stats.far_field_rate, 4)


def _reset_stats(ctx) -> None:
    """Zero the index query counters so each variant's hit rate is its own."""
    stats = getattr(ctx.index, "stats", None)
    if stats is not None:
        stats.reset()


def _stage_dict(timers: StageTimers) -> dict:
    return {
        stage: round(value, 6) if isinstance(value, float) else value
        for stage, value in timers.as_dict().items()
    }


def _best_of(run, repeats: int = 3):
    """Best-of-N wall time; ``run`` returns (steps, timers)."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = run()
        secs = time.perf_counter() - t0
        if secs < best:
            best, out = secs, res
    steps, timers = out
    return best, steps, timers


def bench_engine_plain(ctx):
    _reset_stats(ctx)

    def run():
        timers = StageTimers()
        steps = 0
        streams = WalkStreams(SEED)
        for u in range(N_BATCHES):
            uids = np.arange(u * BATCH, (u + 1) * BATCH, dtype=np.uint64)
            res = run_walks(ctx, streams, uids, None, timers)
            steps += int(res.steps.sum())
        return steps, timers

    secs, steps, timers = _best_of(run)
    return secs, N_BATCHES * BATCH, steps, timers


def bench_engine_pipelined(
    ctx, n_walks=N_BATCHES * BATCH, width=BATCH, prefetch=None, repeats=3
):
    _reset_stats(ctx)
    uids = np.arange(n_walks, dtype=np.uint64)

    def run():
        timers = StageTimers()
        res = run_walks_pipelined(
            ctx,
            WalkStreams(SEED),
            uids,
            width=width,
            lookahead=2,
            timers=timers,
            prefetch=prefetch,
        )
        return int(res.steps.sum()), timers

    secs, steps, timers = _best_of(run, repeats)
    return secs, n_walks, steps, timers


def _extract_config(**overrides):
    return FRWConfig.frw_r(
        seed=SEED,
        n_threads=16,
        batch_size=BATCH,
        min_walks=N_BATCHES * BATCH,
        max_walks=N_BATCHES * BATCH,
        tolerance=1e-9,
        **overrides,
    )


def bench_extract_seed_style(structure):
    """The seed's full extraction loop: plain batches + scalar merge replay."""
    cfg = _extract_config(executor="serial", pipeline=False)
    ctx = build_context(structure, 0, cfg)

    def run():
        timers = StageTimers()
        streams = make_streams(cfg, ctx.master)
        rng_machine = machine_rng(cfg, ctx.master)
        acc = RowAccumulator(ctx.n_conductors, ctx.master, summation=cfg.summation)
        for u in range(N_BATCHES):
            uids = np.arange(u * BATCH, (u + 1) * BATCH, dtype=np.uint64)
            results = run_walks(ctx, streams, uids, None, timers)
            durations = jittered_durations(
                results.steps, rng_machine, cfg.scheduler_jitter
            )
            schedule = simulate_dynamic_queue(durations, cfg.n_threads)
            for thread_order in schedule.thread_order:
                local = acc.spawn()
                for w in thread_order:
                    local.add_walk(
                        float(results.omega[w]),
                        int(results.dest[w]),
                        int(results.steps[w]),
                    )
                acc.merge(local)
        return acc.total_steps, timers

    secs, steps, timers = _best_of(run)
    return secs, N_BATCHES * BATCH, steps, timers, ctx


def bench_extract_default(structure):
    cfg = _extract_config()
    ctx = build_context(structure, 0, cfg)

    def run():
        timers = StageTimers()
        row, stats = extract_row_alg2(ctx, cfg, timers=timers)
        return stats.total_steps, timers

    secs, steps, timers = _best_of(run)
    return secs, N_BATCHES * BATCH, steps, timers, ctx


def _host_cpus() -> int:
    """CPUs this process may run on (affinity/cgroup aware) — the number
    that actually bounds engine throughput, unlike ``os.cpu_count()``."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux host
        return os.cpu_count() or 1


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - no git on host
        return "unknown"


def _load_trajectory(path: str, case: int) -> dict:
    """Load (or initialise) the trajectory file, converting a legacy
    single-snapshot payload into the first run entry."""
    header = {
        "benchmark": "engine_throughput",
        "case": case,
        "batch_size": BATCH,
        "n_batches": N_BATCHES,
        "runs": [],
    }
    if not os.path.exists(path):
        return header
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return header
    if "runs" in payload:
        payload.setdefault("benchmark", "engine_throughput")
        return payload
    # Legacy single snapshot: lift its measurement fields into runs[0].
    legacy = {
        k: payload[k]
        for k in ("host", "results", "speedups")
        if k in payload
    }
    legacy["note"] = "converted from single-snapshot format"
    header["case"] = payload.get("case", case)
    header["runs"] = [legacy]
    return header


def _record(results, name, secs, walks, steps, timers, ctx):
    results[name] = {
        "seconds": round(secs, 6),
        "walks": walks,
        "steps": steps,
        "walks_per_sec": round(walks / secs, 1),
        "steps_per_sec": round(steps / secs, 1),
        "stages": _stage_dict(timers),
        "far_field_rate": _far_field_rate(ctx),
    }
    rate = results[name]["far_field_rate"]
    print(
        f"{name:24s} {secs * 1e3:9.1f} ms   "
        f"{results[name]['walks_per_sec']:>10.0f} walks/s   "
        f"{results[name]['steps_per_sec']:>11.0f} steps/s   "
        f"ff_rate={'-' if rate is None else rate}"
    )


def _warn_on_regression(runs: list[dict]) -> None:
    """GitHub ``::warning::`` when ``engine_pipelined`` steps/sec dropped
    >20% against the previous trajectory entry (warn-only; CI timing is
    noisy and absolute numbers are not comparable across runners)."""
    if len(runs) < 2:
        print("no previous trajectory entry; skipping regression check")
        return
    prev = runs[-2].get("results", {}).get("engine_pipelined", {})
    curr = runs[-1].get("results", {}).get("engine_pipelined", {})
    prev_rate, curr_rate = prev.get("steps_per_sec"), curr.get("steps_per_sec")
    if not prev_rate or not curr_rate:
        return
    change = curr_rate / prev_rate - 1.0
    print(
        f"engine_pipelined steps/sec: {curr_rate:.0f} vs previous "
        f"{prev_rate:.0f} ({change:+.1%})"
    )
    if change < -REGRESSION_WARN:
        print(
            f"::warning title=Engine perf regression::engine_pipelined "
            f"steps/sec dropped {-change:.1%} vs the previous trajectory "
            f"entry ({curr_rate:.0f} vs {prev_rate:.0f}); timing on shared "
            f"runners is noisy, so this is informational only"
        )
    # Same check for the RNG-prefetch on-vs-off speedup: both variants run
    # in the same invocation, so their *ratio* is robust to runner speed —
    # a drop here means the prefetch ring itself regressed.
    prev_sp = runs[-2].get("speedups", {}).get("rng_prefetch_open_field")
    curr_sp = runs[-1].get("speedups", {}).get("rng_prefetch_open_field")
    if not prev_sp or not curr_sp:
        return
    sp_change = curr_sp / prev_sp - 1.0
    print(
        f"rng_prefetch_open_field speedup: {curr_sp:.3f}x vs previous "
        f"{prev_sp:.3f}x ({sp_change:+.1%})"
    )
    if sp_change < -REGRESSION_WARN:
        print(
            f"::warning title=RNG prefetch regression::the open-field "
            f"prefetch-on vs prefetch-off speedup dropped {-sp_change:.1%} "
            f"vs the previous trajectory entry ({curr_sp:.3f}x vs "
            f"{prev_sp:.3f}x)"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_engine.json")
    parser.add_argument("--case", type=int, default=1)
    parser.add_argument(
        "--warn-regression",
        action="store_true",
        help="print a GitHub ::warning:: annotation when engine_pipelined "
        "steps/sec (or the rng_prefetch_open_field speedup) regressed "
        ">20%% vs the previous trajectory entry",
    )
    parser.add_argument(
        "--rng-prefetch-depth",
        type=int,
        default=None,
        help="RNG prefetch ring depth for the pipelined variants "
        "(default: the FRWConfig default; the open_field_prefetch1 "
        "baseline always runs at 1)",
    )
    args = parser.parse_args()

    structure = build_case(args.case, "fast")
    ctx = build_context(structure, 0, FRWConfig.frw_r(seed=SEED))
    ctx_nofast = build_context(
        structure, 0, FRWConfig.frw_r(seed=SEED, far_field=False)
    )
    open_structure = build_open_field()
    open_cfg = dict(seed=SEED, h_cap_fraction=OPEN_H_CAP_FRACTION)
    ctx_open = build_context(
        open_structure, 0, FRWConfig.frw_r(**open_cfg)
    )
    ctx_open_nofast = build_context(
        open_structure, 0, FRWConfig.frw_r(**open_cfg, far_field=False)
    )

    results = {}
    prefetch = args.rng_prefetch_depth
    secs, walks, steps, timers = bench_engine_plain(ctx)
    _record(results, "engine_plain", secs, walks, steps, timers, ctx)
    secs, walks, steps, timers = bench_engine_pipelined(ctx, prefetch=prefetch)
    _record(results, "engine_pipelined", secs, walks, steps, timers, ctx)
    secs, walks, steps, timers = bench_engine_pipelined(
        ctx_nofast, prefetch=prefetch
    )
    _record(
        results, "engine_pipelined_nofast", secs, walks, steps, timers,
        ctx_nofast,
    )
    for name, c, pf in [
        ("open_field", ctx_open, prefetch),
        ("open_field_nofast", ctx_open_nofast, prefetch),
        # The same engine with the prefetch ring disabled: the layer-8
        # dispatch-amortisation baseline (identical walk bytes).
        ("open_field_prefetch1", ctx_open, 1),
    ]:
        # Best-of-5 for the ~1s open-field runs: container noise bursts
        # outlast a single repeat, and the on/off prefetch ratio is only
        # meaningful when both sides caught a quiet window.
        secs, walks, steps, timers = bench_engine_pipelined(
            c, n_walks=OPEN_WALKS, width=OPEN_WIDTH, prefetch=pf, repeats=5
        )
        _record(results, name, secs, walks, steps, timers, c)
    secs, walks, steps, timers, c = bench_extract_seed_style(structure)
    _record(results, "extract_seed_style", secs, walks, steps, timers, c)
    secs, walks, steps, timers, c = bench_extract_default(structure)
    _record(results, "extract_default", secs, walks, steps, timers, c)

    trajectory = _load_trajectory(args.output, args.case)
    entry = {
        # det: allow(DET002) intentional wall-clock: benchmark trajectory
        # entries are timestamped metadata, never an input to computation.
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "host": {
            "cpu_count": os.cpu_count(),
            # Schedulable CPUs (affinity/cgroup aware): 1-core-container
            # entries are self-describing without external context.
            "host_cpus": _host_cpus(),
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
        # Kept for trajectory continuity with pre-fast-path entries.
        "engine_pipelined_stages": results["engine_pipelined"]["stages"],
        "open_field_case": {
            "n_walks": OPEN_WALKS,
            "width": OPEN_WIDTH,
            "h_cap_fraction": OPEN_H_CAP_FRACTION,
        },
        "speedups": {
            "pipelined_vs_plain_engine": round(
                results["engine_pipelined"]["walks_per_sec"]
                / results["engine_plain"]["walks_per_sec"],
                3,
            ),
            "default_vs_seed_extract": round(
                results["extract_default"]["walks_per_sec"]
                / results["extract_seed_style"]["walks_per_sec"],
                3,
            ),
            "fast_path_on_case": round(
                results["engine_pipelined"]["steps_per_sec"]
                / results["engine_pipelined_nofast"]["steps_per_sec"],
                3,
            ),
            "fast_path_open_field": round(
                results["open_field"]["steps_per_sec"]
                / results["open_field_nofast"]["steps_per_sec"],
                3,
            ),
            "rng_prefetch_open_field": round(
                results["open_field"]["steps_per_sec"]
                / results["open_field_prefetch1"]["steps_per_sec"],
                3,
            ),
        },
    }
    runs = trajectory["runs"]
    if runs:
        base = runs[0].get("results", {}).get("engine_pipelined", {})
        base_rate = base.get("steps_per_sec")
        if base_rate:
            entry["speedups"]["pipelined_vs_first_run"] = round(
                results["engine_pipelined"]["steps_per_sec"] / base_rate, 3
            )
        prev_results = runs[-1].get("results", {})
        # Compare open_field against the previous entry's own open_field
        # when it has one (entries since the fast-path PR); the very first
        # comparison fell back to engine_pipelined and stays frozen in the
        # trajectory.
        prev = prev_results.get(
            "open_field", prev_results.get("engine_pipelined", {})
        )
        prev_rate = prev.get("steps_per_sec")
        if prev_rate:
            entry["speedups"]["open_field_pipelined_vs_prev_entry"] = round(
                results["open_field"]["steps_per_sec"] / prev_rate, 3
            )
    runs.append(entry)
    with open(args.output, "w") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("speedups:", entry["speedups"])
    print(f"appended run {len(runs)} to {args.output}")
    if args.warn_regression:
        _warn_on_regression(runs)


if __name__ == "__main__":
    main()
