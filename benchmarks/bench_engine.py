"""Engine throughput benchmark — emits BENCH_engine.json.

Measures walks/sec and steps/sec of the extraction hot path in four
configurations so future changes can track the trajectory:

* ``engine_plain``      — per-batch ``run_walks`` (the seed's engine path).
* ``engine_pipelined``  — cross-batch ``run_walks_pipelined`` (refilled
  vector, same walks, bit-identical results).
* ``extract_seed_style``— full ``extract_row`` with the seed's scheduling:
  per-batch engine + per-walk scalar merge replay (emulated here).
* ``extract_default``   — full ``extract_row_alg2`` with the current
  defaults (pipelined engine + vectorised ordered merge replay; the
  thread/process executors engage automatically on multi-core hosts).

``engine_pipelined`` additionally reports the per-stage timing breakdown
(rng / index / sample / bookkeeping) from the engine's
:class:`~repro.frw.engine.StageTimers`, so a regression is attributable to
a stage, not just a total.

The output file is a *trajectory*: every invocation appends a timestamped
entry (with git revision and host info) to the ``runs`` list instead of
overwriting the snapshot, so the perf history is tracked across PRs.  A
pre-trajectory single-snapshot file is converted into the first run on the
next append.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [-o BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import time
from datetime import datetime, timezone

import numpy as np

from repro import FRWConfig
from repro.frw import (
    StageTimers,
    build_context,
    extract_row_alg2,
    run_walks,
    run_walks_pipelined,
)
from repro.frw.alg2_reproducible import machine_rng, make_streams
from repro.frw.estimator import RowAccumulator
from repro.frw.scheduler import jittered_durations, simulate_dynamic_queue
from repro.rng import WalkStreams
from repro.structures import build_case

BATCH = 2048
N_BATCHES = 4
SEED = 9


def _time(fn, repeats: int = 3):
    """Best-of-N wall time and the last return value."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_engine_plain(ctx):
    def run():
        parts = []
        streams = WalkStreams(SEED)
        for u in range(N_BATCHES):
            uids = np.arange(u * BATCH, (u + 1) * BATCH, dtype=np.uint64)
            parts.append(run_walks(ctx, streams, uids))
        return parts

    secs, parts = _time(run)
    steps = int(sum(p.steps.sum() for p in parts))
    return secs, N_BATCHES * BATCH, steps


def bench_engine_pipelined(ctx):
    uids = np.arange(N_BATCHES * BATCH, dtype=np.uint64)

    def run():
        timers = StageTimers()
        res = run_walks_pipelined(
            ctx, WalkStreams(SEED), uids, width=BATCH, lookahead=2, timers=timers
        )
        return res, timers

    best = float("inf")
    out = None
    for _ in range(3):
        t0 = time.perf_counter()
        res, timers = run()
        secs = time.perf_counter() - t0
        if secs < best:
            best, out = secs, (res, timers)
    res, timers = out
    return best, uids.shape[0], int(res.steps.sum()), timers


def _extract_config(**overrides):
    return FRWConfig.frw_r(
        seed=SEED,
        n_threads=16,
        batch_size=BATCH,
        min_walks=N_BATCHES * BATCH,
        max_walks=N_BATCHES * BATCH,
        tolerance=1e-9,
        **overrides,
    )


def bench_extract_seed_style(structure):
    """The seed's full extraction loop: plain batches + scalar merge replay."""
    cfg = _extract_config(executor="serial", pipeline=False)
    ctx = build_context(structure, 0, cfg)

    def run():
        streams = make_streams(cfg, ctx.master)
        rng_machine = machine_rng(cfg, ctx.master)
        acc = RowAccumulator(ctx.n_conductors, ctx.master, summation=cfg.summation)
        for u in range(N_BATCHES):
            uids = np.arange(u * BATCH, (u + 1) * BATCH, dtype=np.uint64)
            results = run_walks(ctx, streams, uids)
            durations = jittered_durations(
                results.steps, rng_machine, cfg.scheduler_jitter
            )
            schedule = simulate_dynamic_queue(durations, cfg.n_threads)
            for thread_order in schedule.thread_order:
                local = acc.spawn()
                for w in thread_order:
                    local.add_walk(
                        float(results.omega[w]),
                        int(results.dest[w]),
                        int(results.steps[w]),
                    )
                acc.merge(local)
        return acc

    secs, acc = _time(run)
    return secs, acc.walks, acc.total_steps


def bench_extract_default(structure):
    cfg = _extract_config()
    ctx = build_context(structure, 0, cfg)

    def run():
        return extract_row_alg2(ctx, cfg)

    secs, (row, stats) = _time(run)
    return secs, stats.walks, stats.total_steps


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - no git on host
        return "unknown"


def _load_trajectory(path: str, case: int) -> dict:
    """Load (or initialise) the trajectory file, converting a legacy
    single-snapshot payload into the first run entry."""
    header = {
        "benchmark": "engine_throughput",
        "case": case,
        "batch_size": BATCH,
        "n_batches": N_BATCHES,
        "runs": [],
    }
    if not os.path.exists(path):
        return header
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return header
    if "runs" in payload:
        payload.setdefault("benchmark", "engine_throughput")
        return payload
    # Legacy single snapshot: lift its measurement fields into runs[0].
    legacy = {
        k: payload[k]
        for k in ("host", "results", "speedups")
        if k in payload
    }
    legacy["note"] = "converted from single-snapshot format"
    header["case"] = payload.get("case", case)
    header["runs"] = [legacy]
    return header


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_engine.json")
    parser.add_argument("--case", type=int, default=1)
    args = parser.parse_args()

    structure = build_case(args.case, "fast")
    ctx = build_context(structure, 0, FRWConfig.frw_r(seed=SEED))

    results = {}
    stage_breakdown = None
    for name, fn, arg in [
        ("engine_plain", bench_engine_plain, ctx),
        ("engine_pipelined", bench_engine_pipelined, ctx),
        ("extract_seed_style", bench_extract_seed_style, structure),
        ("extract_default", bench_extract_default, structure),
    ]:
        out = fn(arg)
        if name == "engine_pipelined":
            secs, walks, steps, timers = out
            stage_breakdown = {
                stage: round(value, 6) if isinstance(value, float) else value
                for stage, value in timers.as_dict().items()
            }
        else:
            secs, walks, steps = out
        results[name] = {
            "seconds": round(secs, 6),
            "walks": walks,
            "steps": steps,
            "walks_per_sec": round(walks / secs, 1),
            "steps_per_sec": round(steps / secs, 1),
        }
        print(
            f"{name:20s} {secs * 1e3:9.1f} ms   "
            f"{results[name]['walks_per_sec']:>10.0f} walks/s   "
            f"{results[name]['steps_per_sec']:>11.0f} steps/s"
        )
    print("engine_pipelined stage breakdown (s):", stage_breakdown)

    trajectory = _load_trajectory(args.output, args.case)
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "host": {
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
        "engine_pipelined_stages": stage_breakdown,
        "speedups": {
            "pipelined_vs_plain_engine": round(
                results["engine_pipelined"]["walks_per_sec"]
                / results["engine_plain"]["walks_per_sec"],
                3,
            ),
            "default_vs_seed_extract": round(
                results["extract_default"]["walks_per_sec"]
                / results["extract_seed_style"]["walks_per_sec"],
                3,
            ),
        },
    }
    runs = trajectory["runs"]
    if runs:
        base = runs[0].get("results", {}).get("engine_pipelined", {})
        base_rate = base.get("steps_per_sec")
        if base_rate:
            entry["speedups"]["pipelined_vs_first_run"] = round(
                results["engine_pipelined"]["steps_per_sec"] / base_rate, 3
            )
    runs.append(entry)
    with open(args.output, "w") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"appended run {len(runs)} to {args.output}")


if __name__ == "__main__":
    main()
