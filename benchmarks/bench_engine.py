"""Engine throughput benchmark — emits BENCH_engine.json.

Measures walks/sec and steps/sec of the extraction hot path in four
configurations so future changes can track the trajectory:

* ``engine_plain``      — per-batch ``run_walks`` (the seed's engine path).
* ``engine_pipelined``  — cross-batch ``run_walks_pipelined`` (refilled
  vector, same walks, bit-identical results).
* ``extract_seed_style``— full ``extract_row`` with the seed's scheduling:
  per-batch engine + per-walk scalar merge replay (emulated here).
* ``extract_default``   — full ``extract_row_alg2`` with the current
  defaults (pipelined engine + vectorised ordered merge replay; the
  thread/process executors engage automatically on multi-core hosts).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [-o BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro import FRWConfig
from repro.frw import build_context, extract_row_alg2, run_walks, run_walks_pipelined
from repro.frw.alg2_reproducible import machine_rng, make_streams
from repro.frw.estimator import RowAccumulator
from repro.frw.scheduler import jittered_durations, simulate_dynamic_queue
from repro.rng import WalkStreams
from repro.structures import build_case

BATCH = 2048
N_BATCHES = 4
SEED = 9


def _time(fn, repeats: int = 3):
    """Best-of-N wall time and the last return value."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_engine_plain(ctx):
    def run():
        parts = []
        streams = WalkStreams(SEED)
        for u in range(N_BATCHES):
            uids = np.arange(u * BATCH, (u + 1) * BATCH, dtype=np.uint64)
            parts.append(run_walks(ctx, streams, uids))
        return parts

    secs, parts = _time(run)
    steps = int(sum(p.steps.sum() for p in parts))
    return secs, N_BATCHES * BATCH, steps


def bench_engine_pipelined(ctx):
    uids = np.arange(N_BATCHES * BATCH, dtype=np.uint64)

    def run():
        return run_walks_pipelined(
            ctx, WalkStreams(SEED), uids, width=BATCH, lookahead=2
        )

    secs, res = _time(run)
    return secs, uids.shape[0], int(res.steps.sum())


def _extract_config(**overrides):
    return FRWConfig.frw_r(
        seed=SEED,
        n_threads=16,
        batch_size=BATCH,
        min_walks=N_BATCHES * BATCH,
        max_walks=N_BATCHES * BATCH,
        tolerance=1e-9,
        **overrides,
    )


def bench_extract_seed_style(structure):
    """The seed's full extraction loop: plain batches + scalar merge replay."""
    cfg = _extract_config(executor="serial", pipeline=False)
    ctx = build_context(structure, 0, cfg)

    def run():
        streams = make_streams(cfg, ctx.master)
        rng_machine = machine_rng(cfg, ctx.master)
        acc = RowAccumulator(ctx.n_conductors, ctx.master, summation=cfg.summation)
        for u in range(N_BATCHES):
            uids = np.arange(u * BATCH, (u + 1) * BATCH, dtype=np.uint64)
            results = run_walks(ctx, streams, uids)
            durations = jittered_durations(
                results.steps, rng_machine, cfg.scheduler_jitter
            )
            schedule = simulate_dynamic_queue(durations, cfg.n_threads)
            for thread_order in schedule.thread_order:
                local = acc.spawn()
                for w in thread_order:
                    local.add_walk(
                        float(results.omega[w]),
                        int(results.dest[w]),
                        int(results.steps[w]),
                    )
                acc.merge(local)
        return acc

    secs, acc = _time(run)
    return secs, acc.walks, acc.total_steps


def bench_extract_default(structure):
    cfg = _extract_config()
    ctx = build_context(structure, 0, cfg)

    def run():
        return extract_row_alg2(ctx, cfg)

    secs, (row, stats) = _time(run)
    return secs, stats.walks, stats.total_steps


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_engine.json")
    parser.add_argument("--case", type=int, default=1)
    args = parser.parse_args()

    structure = build_case(args.case, "fast")
    ctx = build_context(structure, 0, FRWConfig.frw_r(seed=SEED))

    results = {}
    for name, fn, arg in [
        ("engine_plain", bench_engine_plain, ctx),
        ("engine_pipelined", bench_engine_pipelined, ctx),
        ("extract_seed_style", bench_extract_seed_style, structure),
        ("extract_default", bench_extract_default, structure),
    ]:
        secs, walks, steps = fn(arg)
        results[name] = {
            "seconds": round(secs, 6),
            "walks": walks,
            "steps": steps,
            "walks_per_sec": round(walks / secs, 1),
            "steps_per_sec": round(steps / secs, 1),
        }
        print(
            f"{name:20s} {secs * 1e3:9.1f} ms   "
            f"{results[name]['walks_per_sec']:>10.0f} walks/s   "
            f"{results[name]['steps_per_sec']:>11.0f} steps/s"
        )

    payload = {
        "benchmark": "engine_throughput",
        "case": args.case,
        "batch_size": BATCH,
        "n_batches": N_BATCHES,
        "host": {
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "results": results,
        "speedups": {
            "pipelined_vs_plain_engine": round(
                results["engine_pipelined"]["walks_per_sec"]
                / results["engine_plain"]["walks_per_sec"],
                3,
            ),
            "default_vs_seed_extract": round(
                results["extract_default"]["walks_per_sec"]
                / results["extract_seed_style"]["walks_per_sec"],
                3,
            ),
        },
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
