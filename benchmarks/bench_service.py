"""Extraction-service load benchmark — emits BENCH_service.json.

Boots a real :class:`repro.service.ExtractionService` HTTP server on an
ephemeral port and drives it with the seeded synthetic traffic generator
(:class:`repro.service.TrafficGenerator`) at a controlled duplicate rate.
Three sections are recorded per run:

* ``load`` — the mixed interactive/bulk stream: per-request latency split
  cold (first sight of a net) vs warm (memoized duplicate), p50/p99 per
  class, requests/sec, and the server-side cache counters.  The headline
  number is ``warm_speedup_p50`` — how much faster a duplicate is than a
  cold solve; determinism makes the cache permanently valid, so this is
  pure memoization win, not staleness risk.
* ``hit_rate`` — the measured result-cache hit rate against the
  configured duplicate rate (they must track each other; the duplicates
  are translated + permuted + renamed, so hits happen only through
  canonicalization).
* ``fairness`` — interactive p99 alone vs interactive p99 while a bulk
  backlog is draining through the same slots.  The quota scheduler
  reserves a slot for interactive whenever its queue is non-empty, so the
  ratio stays bounded; a ``::warning::`` annotation (not a failure) is
  emitted when it exceeds 1.2x, since single-core CI runners make any
  latency ratio noisy.

The output file is a *trajectory*: every invocation appends a timestamped
entry (git revision, host info, ``host_cpus``) to the ``runs`` list.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [-o BENCH_service.json]
        [--requests 60] [--duplicate-rate 0.5] [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import threading
import time
from datetime import datetime, timezone

from repro.service import (
    ServiceClient,
    ServiceSettings,
    TrafficGenerator,
    run_server,
)

SEED = 17
DUPLICATE_RATE = 0.5
INTERACTIVE_FRACTION = 0.75
N_REQUESTS = 60
MAX_WALKS = 768
BATCH = 256


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _latency_summary(samples: list[float]) -> dict:
    if not samples:
        return {"count": 0}
    return {
        "count": len(samples),
        "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1e3, 3),
        "mean_ms": round(statistics.fmean(samples) * 1e3, 3),
    }


def start_server(settings: ServiceSettings):
    """Run the service in a daemon thread; returns (client, stop)."""
    ready = threading.Event()
    bound = {}

    def _ready(port: int) -> None:
        bound["port"] = port
        ready.set()

    thread = threading.Thread(
        target=run_server, args=(settings,), kwargs={"ready": _ready},
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout=60):
        raise RuntimeError("service did not come up within 60s")
    client = ServiceClient(port=bound["port"], timeout=600.0)

    def stop() -> None:
        client.shutdown()
        thread.join(timeout=120)

    return client, stop


def run_load(client: ServiceClient, args) -> tuple[dict, dict]:
    """The mixed traffic phase: cold/warm latency split + throughput."""
    generator = TrafficGenerator(
        seed=SEED,
        duplicate_rate=args.duplicate_rate,
        interactive_fraction=INTERACTIVE_FRACTION,
        max_walks=args.max_walks,
        batch_size=BATCH,
    )
    cold: dict[str, list[float]] = {"interactive": [], "bulk": []}
    warm: dict[str, list[float]] = {"interactive": [], "bulk": []}
    t_start = time.perf_counter()
    for payload, meta in generator.requests(args.requests):
        t0 = time.perf_counter()
        response = client.extract(
            payload["structure"],
            payload["config"],
            priority=payload["priority"],
        )
        elapsed = time.perf_counter() - t0
        bucket = warm if response["cached"] else cold
        bucket[payload["priority"]].append(elapsed)
    wall = time.perf_counter() - t_start

    cold_all = cold["interactive"] + cold["bulk"]
    warm_all = warm["interactive"] + warm["bulk"]
    stats = client.stats()
    entry = {
        "requests": args.requests,
        "duplicate_rate": args.duplicate_rate,
        "wall_seconds": round(wall, 3),
        "requests_per_sec": round(args.requests / wall, 2),
        "cold": _latency_summary(cold_all),
        "warm": _latency_summary(warm_all),
        "by_class": {
            "interactive": _latency_summary(
                cold["interactive"] + warm["interactive"]
            ),
            "bulk": _latency_summary(cold["bulk"] + warm["bulk"]),
        },
        "server": {
            "full_hits": stats["full_hits"],
            "solves": stats["solves"],
            "result_cache": stats["result_cache"],
            "asset_cache": stats["asset_cache"],
            "asset_inner": stats["asset_inner"],
        },
    }
    if warm_all and cold_all:
        entry["warm_speedup_p50"] = round(
            _percentile(cold_all, 0.5) / _percentile(warm_all, 0.5), 2
        )
    print(
        f"load: {args.requests} requests in {wall:.2f}s "
        f"({entry['requests_per_sec']} rps), cold p50 "
        f"{entry['cold'].get('p50_ms', '-')} ms, warm p50 "
        f"{entry['warm'].get('p50_ms', '-')} ms, warm speedup "
        f"{entry.get('warm_speedup_p50', 'n/a')}x"
    )
    if entry.get("warm_speedup_p50", 0) < 5.0:
        print(
            "::warning::warm-cache p50 speedup "
            f"{entry.get('warm_speedup_p50')}x is below the 5x floor"
        )

    served = stats["full_hits"] + stats["solves"]
    measured_hit_rate = round(stats["full_hits"] / served, 3) if served else 0.0
    hit_entry = {
        "configured_duplicate_rate": args.duplicate_rate,
        "measured_full_hit_rate": measured_hit_rate,
        "warm_responses": len(warm_all),
        "cold_responses": len(cold_all),
    }
    print(
        f"hit rate: measured {measured_hit_rate} vs configured duplicate "
        f"rate {args.duplicate_rate}"
    )
    if abs(measured_hit_rate - args.duplicate_rate) > 0.15:
        print(
            "::warning::measured hit rate deviates from the configured "
            f"duplicate rate by more than 0.15 "
            f"({measured_hit_rate} vs {args.duplicate_rate})"
        )
    return entry, hit_entry


def run_fairness(client: ServiceClient, args) -> dict:
    """Interactive p99 alone vs under a draining bulk backlog.

    The interactive probes are repeats of one already-memoized net, so
    each probe measures scheduling + cache latency, not solver time —
    exactly the interactive experience the quota scheduler protects.
    """
    probe_gen = TrafficGenerator(
        seed=SEED + 1, duplicate_rate=0.0, max_walks=args.max_walks,
        batch_size=BATCH,
    )
    probe, _meta = probe_gen.request()
    client.extract(probe["structure"], probe["config"])  # memoize the probe

    def probe_once() -> float:
        t0 = time.perf_counter()
        client.extract(
            probe["structure"], probe["config"], priority="interactive"
        )
        return time.perf_counter() - t0

    n_probes = max(10, args.requests // 3)
    alone = [probe_once() for _ in range(n_probes)]

    # Flood the bulk queue with fresh (cold) nets, then probe while the
    # backlog drains through the same slots.
    bulk_gen = TrafficGenerator(
        seed=SEED + 2, duplicate_rate=0.0, max_walks=args.max_walks,
        batch_size=BATCH,
    )
    pending = []
    bulk_times: list[float] = []

    def bulk_job(payload: dict) -> None:
        t0 = time.perf_counter()
        client.extract(
            payload["structure"], payload["config"], priority="bulk"
        )
        bulk_times.append(time.perf_counter() - t0)

    for payload, _meta in bulk_gen.requests(max(4, args.requests // 8)):
        pending.append(
            threading.Thread(target=bulk_job, args=(payload,), daemon=True)
        )
    for thread in pending:
        thread.start()
    under_load = [probe_once() for _ in range(n_probes)]
    for thread in pending:
        thread.join(timeout=600)

    p99_alone = _percentile(alone, 0.99)
    p99_loaded = _percentile(under_load, 0.99)
    bulk_p50 = _percentile(bulk_times, 0.5) if bulk_times else None
    ratio = round(p99_loaded / p99_alone, 2) if p99_alone > 0 else None
    entry = {
        "probes": n_probes,
        "interactive_p99_alone_ms": round(p99_alone * 1e3, 3),
        "interactive_p99_under_bulk_ms": round(p99_loaded * 1e3, 3),
        "p99_ratio": ratio,
        "bulk_service_p50_ms": (
            round(bulk_p50 * 1e3, 3) if bulk_p50 is not None else None
        ),
        # Non-starvation headroom: how far interactive p99 under load stays
        # *below* a single bulk service time.  Without the interactive-slot
        # reservation a probe would queue behind the whole bulk backlog and
        # this would exceed the backlog depth, not sit well under 1.
        "starvation_headroom": (
            round(p99_loaded / bulk_p50, 3) if bulk_p50 else None
        ),
    }
    print(
        f"fairness: interactive p99 {entry['interactive_p99_alone_ms']} ms "
        f"alone vs {entry['interactive_p99_under_bulk_ms']} ms under bulk "
        f"({ratio}x); one bulk job p50 {entry['bulk_service_p50_ms']} ms"
    )
    if ratio is not None and ratio > 1.2:
        print(
            f"::warning::interactive p99 degraded {ratio}x under bulk load "
            "(above the 1.2x target: on a single-CPU host the solver thread "
            "contends for the interpreter with the front door; the "
            "non-starvation guarantee is the starvation_headroom field, "
            f"{entry['starvation_headroom']} of one bulk service time)"
        )
    return entry


def _host_cpus() -> int:
    """CPUs this process may run on (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux host
        return os.cpu_count() or 1


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - no git on host
        return "unknown"


def _load_trajectory(path: str) -> dict:
    header = {
        "benchmark": "service_memoized_extraction",
        "runs": [],
    }
    if not os.path.exists(path):
        return header
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return header
    if "runs" in payload:
        payload.setdefault("benchmark", "service_memoized_extraction")
        return payload
    return header


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="BENCH_service.json")
    parser.add_argument("--requests", type=int, default=N_REQUESTS)
    parser.add_argument("--duplicate-rate", type=float, default=DUPLICATE_RATE)
    parser.add_argument("--max-walks", type=int, default=MAX_WALKS)
    parser.add_argument("--slots", type=int, default=1)
    parser.add_argument(
        "--executor", default="serial", choices=["serial", "thread", "process"]
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (fewer requests, fewer walks)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.requests = min(args.requests, 24)
        args.max_walks = min(args.max_walks, 384)

    settings = ServiceSettings(
        port=0,
        slots=args.slots,
        executor=args.executor,
        n_workers=args.workers,
    )
    client, stop = start_server(settings)
    try:
        load, hit_rate = run_load(client, args)
        fairness = run_fairness(client, args)
    finally:
        stop()

    trajectory = _load_trajectory(args.output)
    entry = {
        # det: allow(DET002) intentional wall-clock: benchmark trajectory
        # entries are timestamped metadata, never an input to computation.
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "host": {
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "host_cpus": _host_cpus(),
        "settings": {
            "slots": args.slots,
            "executor": args.executor,
            "n_workers": args.workers,
            "max_walks": args.max_walks,
        },
        "load": load,
        "hit_rate": hit_rate,
        "fairness": fairness,
    }
    trajectory["runs"].append(entry)
    with open(args.output, "w") as fh:
        json.dump(trajectory, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"appended run {len(trajectory['runs'])} to {args.output}")


if __name__ == "__main__":
    main()
