"""Table II benchmarks: the cost of reproducibility machinery.

Times fixed-budget extractions of every variant at T=16 virtual threads.
The paper's claim: DOP-independent reproducibility (Alg. 2 + Kahan +
CBRNG) costs nothing over the Alg. 1 baseline, while the Mersenne-Twister
ablation (FRW-NC) pays the per-walk reseeding penalty.
"""

import numpy as np
import pytest

from repro import FRWConfig, FRWSolver
from repro.frw import build_context, extract_row_alg1, extract_row_alg2


def budget_cfg(factory, walk_budget, **kw):
    return factory(
        seed=9,
        n_threads=16,
        batch_size=walk_budget,
        min_walks=walk_budget,
        max_walks=walk_budget,
        tolerance=0.5,
        **kw,
    )


@pytest.mark.parametrize(
    "variant,factory",
    [
        ("frw-r", FRWConfig.frw_r),
        ("frw-nk", FRWConfig.frw_nk),
        ("frw-rr", FRWConfig.frw_rr),
    ],
)
def test_alg2_variants_fixed_budget(benchmark, case1, walk_budget, variant, factory):
    cfg = budget_cfg(factory, walk_budget)
    ctx = build_context(case1, 0, cfg)

    def run():
        row, stats = extract_row_alg2(ctx, cfg)
        return stats.walks

    walks = benchmark(run)
    assert walks == walk_budget


def test_alg1_baseline_fixed_budget(benchmark, case1, walk_budget):
    cfg = budget_cfg(FRWConfig.alg1, walk_budget, check_every=walk_budget // 16)
    ctx = build_context(case1, 0, cfg)

    def run():
        row, stats = extract_row_alg1(ctx, cfg)
        return stats.walks

    walks = benchmark(run)
    assert walks >= walk_budget


def test_mt_reseeding_penalty(benchmark, case1):
    """FRW-NC with per-walk MT reseeding (paper: ~2x slower end to end)."""
    budget = 500  # MT loops per walk; keep the benchmark snappy
    cfg = budget_cfg(FRWConfig.frw_nc, budget)
    ctx = build_context(case1, 0, cfg)

    def run():
        row, stats = extract_row_alg2(ctx, cfg)
        return stats.walks

    assert benchmark(run) == budget


def test_reproducibility_index_evaluation(benchmark, case1, fixed_budget_config):
    """Cost of the RI metric itself over 8 repeated matrices."""
    from repro.numerics import reproducibility_indices

    result = FRWSolver(case1, fixed_budget_config).extract(masters=[0])
    rng = np.random.default_rng(0)
    runs = [
        result.matrix.values * (1 + 1e-13 * rng.standard_normal(result.matrix.values.shape))
        for _ in range(8)
    ]
    stats = benchmark(reproducibility_indices, runs)
    assert stats.n_pairs == 28
