"""Table III benchmarks: regularization cost (T_post) and its scaling.

The paper claims Alg. 3 costs ``O(Nm^2 + Nc)`` and is negligible against
extraction time (milliseconds for hundreds of masters).  These benchmarks
time the regularizer on synthetic observations of growing size, the sparse
vs dense solver paths, and the cheap Sec. IV-C variants.
"""

import numpy as np
import pytest

from repro import CapacitanceMatrix, naive_adjustment, regularize, symmetrize


def synthetic_observation(nm: int, n: int, seed: int = 0, density: float = 0.3):
    """A noisy banded observation mimicking an extracted local layout."""
    rng = np.random.default_rng(seed)
    values = np.zeros((nm, n))
    sigma2 = np.zeros((nm, n))
    hits = np.zeros((nm, n), dtype=np.int64)
    band = max(2, int(density * nm))
    for i in range(nm):
        lo = max(0, i - band)
        hi = min(nm, i + band + 1)
        for j in list(range(lo, hi)) + list(range(nm, n)):
            if j == i:
                continue
            values[i, j] = -rng.uniform(0.1, 1.0)
            sigma2[i, j] = (0.03 * abs(values[i, j])) ** 2
            hits[i, j] = 50
    for i in range(nm):
        values[i, i] = -values[i].sum() * (1 + 0.01 * rng.standard_normal())
        sigma2[i, i] = (0.01 * values[i, i]) ** 2
        hits[i, i] = 200
    return CapacitanceMatrix(
        values=values,
        masters=list(range(nm)),
        names=[f"c{j}" for j in range(n)],
        sigma2=sigma2,
        hits=hits,
    )


@pytest.mark.parametrize("nm", [20, 80, 320])
def test_regularize_scaling(benchmark, nm):
    obs = synthetic_observation(nm, nm + 2)
    reg = benchmark(regularize, obs)
    assert reg.meta["regularized"]


def test_regularize_sparse_solver_large(benchmark):
    obs = synthetic_observation(700, 702, density=0.02)
    reg = benchmark(regularize, obs, solver="sparse")
    assert reg.meta["regularized"]


def test_regularize_dense_solver(benchmark):
    obs = synthetic_observation(150, 152)
    benchmark(regularize, obs, solver="dense")


def test_symmetrize_only(benchmark):
    obs = synthetic_observation(150, 152)
    benchmark(symmetrize, obs)


def test_naive_adjustment_cost(benchmark):
    obs = synthetic_observation(150, 152)
    benchmark(naive_adjustment, obs)


def test_property_metrics_cost(benchmark):
    from repro.reliability import check_properties

    obs = synthetic_observation(300, 302)
    benchmark(check_properties, obs)
