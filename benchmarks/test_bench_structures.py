"""Table I benchmarks: structure generation, validation, surface building.

These time the substrate work behind the Table I inventory: deterministic
case generation (including the 48k-conductor paper-profile case 6),
grid-accelerated validation, and Gaussian-surface construction.
"""

import pytest

from repro import FRWConfig
from repro.frw import build_context
from repro.geometry import build_gaussian_surface
from repro.structures import build_case, large_grid, sram_like


def test_generate_case3_paper(benchmark):
    structure = benchmark(build_case, 3, "paper")
    assert len(structure.conductors) == 39


def test_generate_case5_paper(benchmark):
    structure = benchmark(build_case, 5, "paper")
    assert len(structure.conductors) == 656


def test_generate_large_grid_4k(benchmark):
    structure = benchmark(large_grid, 64, 64)
    assert structure.n_boxes == 64 * 64 + 1


def test_validate_sram(benchmark):
    structure = sram_like(rows=3, cols=30)
    benchmark(structure.validate, 0.02)


def test_gaussian_surface_multibox(benchmark, case3_fast):
    # Ring conductors have 4 overlapping boxes each — the rectilinear
    # boolean path.
    surf = benchmark(build_gaussian_surface, case3_fast, 0)
    assert surf.n_patches >= 6


def test_build_context_case1(benchmark, case1):
    ctx = benchmark(build_context, case1, 0, FRWConfig.frw_r(seed=1))
    assert ctx.surface.total_area > 0
