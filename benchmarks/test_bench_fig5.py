"""Fig. 5 benchmarks: engine throughput and scheduling.

The runtime-vs-threads figure is driven by (a) raw walk throughput and (b)
schedule quality.  These benchmarks time the vectorised engine, the
dynamic-queue simulation across thread counts, and the real thread-pool
executor.
"""

import numpy as np
import pytest

from repro.frw import (
    run_walks,
    run_walks_parallel,
    simulate_dynamic_queue,
    simulate_static_blocks,
)
from repro.rng import WalkStreams


def test_engine_batch_throughput(benchmark, ctx_case1, walk_budget):
    uids = np.arange(walk_budget, dtype=np.uint64)

    def run():
        return run_walks(ctx_case1, WalkStreams(9, 0), uids).dest.shape[0]

    assert benchmark(run) == walk_budget


@pytest.mark.parametrize("threads", [2, 16, 64])
def test_dynamic_queue_simulation(benchmark, threads):
    durations = np.random.default_rng(0).uniform(1, 40, 10_000)
    sched = benchmark(simulate_dynamic_queue, durations, threads)
    assert sched.efficiency > 0.9


def test_static_blocks_simulation(benchmark):
    durations = np.random.default_rng(1).uniform(1, 40, 10_000)
    benchmark(simulate_static_blocks, durations, 16)


def test_thread_pool_executor(benchmark, ctx_case1):
    uids = np.arange(2000, dtype=np.uint64)

    def run():
        return run_walks_parallel(
            ctx_case1, lambda: WalkStreams(9, 0), uids, n_workers=2
        ).dest.shape[0]

    assert benchmark(run) == 2000


def test_walk_step_cost_breakdown(benchmark, ctx_case1):
    """Single engine sweep over a small batch: the per-step fixed costs."""
    uids = np.arange(64, dtype=np.uint64)

    def run():
        return int(run_walks(ctx_case1, WalkStreams(9, 0), uids).steps.sum())

    assert benchmark(run) > 0
