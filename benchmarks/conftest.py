"""Shared benchmark fixtures: prebuilt structures and contexts."""

import numpy as np
import pytest

from repro import FRWConfig
from repro.frw import build_context
from repro.structures import build_case


@pytest.fixture(scope="session")
def case1():
    return build_case(1, "fast")


@pytest.fixture(scope="session")
def case3_fast():
    return build_case(3, "fast")


@pytest.fixture(scope="session")
def ctx_case1(case1):
    return build_context(case1, 0, FRWConfig.frw_r(seed=9))


@pytest.fixture(scope="session")
def walk_budget():
    """Fixed walk budget so benchmark work is deterministic."""
    return 4000


@pytest.fixture(scope="session")
def fixed_budget_config(walk_budget):
    return FRWConfig.frw_r(
        seed=9,
        n_threads=16,
        batch_size=walk_budget,
        min_walks=walk_budget,
        max_walks=walk_budget,
        tolerance=0.5,
    )
