"""Micro-benchmarks for the design choices Sec. III-C calls out.

* counter-based RNG vs per-walk Mersenne-Twister reseeding (the ~2x claim),
* Kahan vs naive accumulation,
* spatial-index query strategies,
* Gaussian-surface sampling and transition-table sampling.
"""

import numpy as np
import pytest

from repro.geometry import BruteForceIndex, GridIndex
from repro.greens import get_cube_table
from repro.numerics import KahanVector, NaiveVector
from repro.rng import MTWalkStreams, WalkStreams


N_WALKS = 2000


def test_philox_per_walk_streams(benchmark):
    ws = WalkStreams(seed=1)
    uids = np.arange(N_WALKS, dtype=np.uint64)
    benchmark(ws.draws, uids, 3, 3)


def test_mt_per_walk_reseeding(benchmark):
    """The cost Sec. III-C eliminates: a fresh 624-word MT state per walk."""
    uids = np.arange(N_WALKS, dtype=np.uint64)

    def run():
        ws = MTWalkStreams(seed=1)  # fresh cache: every draw reseeds
        return ws.draws(uids, 0, 3)

    benchmark(run)


def test_philox_bulk_generation(benchmark):
    from repro.rng import philox4x32, words_to_unit_double

    blocks = np.arange(100_000, dtype=np.uint64)

    def run():
        w = philox4x32(
            (blocks & np.uint64(0xFFFFFFFF)).astype(np.uint32),
            np.uint32(0),
            np.uint32(0),
            np.uint32(1),
            np.uint32(2),
            np.uint32(3),
        )
        return words_to_unit_double(w[0], w[1])

    out = benchmark(run)
    assert out.shape == (100_000,)


def test_kahan_vector_accumulate(benchmark):
    acc = KahanVector(8)
    terms = np.random.default_rng(0).standard_normal((1000, 8))

    def run():
        for t in terms:
            acc.add(t)
        return acc.value

    benchmark(run)


def test_naive_vector_accumulate(benchmark):
    acc = NaiveVector(8)
    terms = np.random.default_rng(0).standard_normal((1000, 8))

    def run():
        for t in terms:
            acc.add(t)
        return acc.value

    benchmark(run)


def test_brute_force_index_query(benchmark, case3_fast):
    index = BruteForceIndex(case3_fast)
    pts = np.random.default_rng(1).uniform(-20, 20, (4000, 3))
    benchmark(index.query, pts)


def test_grid_index_query(benchmark, case3_fast):
    index = GridIndex(case3_fast, h_cap=4.0)  # CSR lists built eagerly here
    pts = np.random.default_rng(1).uniform(-20, 20, (4000, 3))
    benchmark(index.query, pts)


def test_grid_index_build_thousands(benchmark):
    """CSR build over thousands of boxes: the batched cell-range expansion
    (historically a per-box Python loop, O(m) interpreter iterations)."""
    from repro.structures.large import large_grid

    structure = large_grid(50, 50)  # 2501 boxes
    assert structure.n_boxes > 2000
    benchmark(GridIndex, structure, 2.0)


def test_surface_sampling(benchmark, ctx_case1):
    u = np.random.default_rng(2).random((10_000, 3))
    benchmark(ctx_case1.surface.sample, u)


def test_cube_table_sampling(benchmark):
    table = get_cube_table(32)
    rng = np.random.default_rng(3)
    u = rng.random(10_000)
    ja = rng.random(10_000)
    jb = rng.random(10_000)

    def run():
        cells = table.sample_cells(u)
        return table.unit_positions(cells, ja, jb)

    benchmark(run)


def test_cube_table_construction(benchmark):
    from repro.greens.cube_table import _build

    benchmark(_build, 16, 48)


# ----------------------------------------------------------------------
# Walk-engine throughput
# ----------------------------------------------------------------------
def test_engine_full_batch(benchmark, ctx_case1):
    """run_walks on a full batch: the per-step vectorised hot path."""
    from repro.frw import run_walks

    uids = np.arange(2048, dtype=np.uint64)

    def run():
        return run_walks(ctx_case1, WalkStreams(seed=9), uids)

    res = benchmark(run)
    assert res.omega.shape == (2048,)


def test_engine_plain_batches(benchmark, ctx_case1):
    """Per-batch execution: each batch drains to a ragged tail."""
    from repro.frw import run_walks

    batch = 512

    def run():
        ws = WalkStreams(seed=9)
        parts = [
            run_walks(
                ctx_case1,
                ws,
                np.arange(u * batch, (u + 1) * batch, dtype=np.uint64),
            )
            for u in range(4)
        ]
        return parts

    benchmark(run)


def test_engine_pipelined_batches(benchmark, ctx_case1):
    """Cross-batch pipelining over the same walks as test_engine_plain_batches:
    absorbed slots refill from the next batch, so the vector stays full."""
    from repro.frw import run_walks_pipelined

    uids = np.arange(4 * 512, dtype=np.uint64)

    def run():
        return run_walks_pipelined(
            ctx_case1, WalkStreams(seed=9), uids, width=512, lookahead=2
        )

    benchmark(run)


def test_merge_replay_ordered(benchmark):
    """The vectorised virtual-thread merge replay (order-preserving Kahan)."""
    from repro.frw import RowAccumulator

    rng = np.random.default_rng(7)
    omega = rng.standard_normal(10_000)
    dest = rng.integers(0, 6, 10_000)
    steps = rng.integers(1, 40, 10_000)

    def run():
        acc = RowAccumulator(6, 0)
        acc.add_walks_ordered(omega, dest, steps)
        return acc.row()

    benchmark(run)
