# Convenience targets for the FRW-RR reproduction.

PYTHON ?= python3

.PHONY: install test lint lint-baseline bench bench-service bench-micro examples experiments experiments-quick clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Determinism & cache-soundness static analysis, det-lint v2: per-file
# rules + whole-program passes, gated by the committed lint-baseline.json
# (see docs/STATIC_ANALYSIS.md).  Also emits the SARIF artifact CI uploads.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint --sarif det-lint.sarif src tests benchmarks

# Deliberately regenerate the committed baseline of accepted findings.
# Run this only when a finding has been reviewed and consciously accepted
# (or paid down) — never to make CI green.
lint-baseline:
	PYTHONPATH=src $(PYTHON) -m repro.lint --write-baseline src tests benchmarks

# Append a fresh entry to both benchmark trajectories (BENCH_engine.json,
# BENCH_extract.json): engine stage breakdown (seconds + dispatch counts,
# incl. the open_field_prefetch1 RNG-prefetch A/B baseline) + far-field
# hit rates, and the cross-master schedule comparison.
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine.py
	PYTHONPATH=src $(PYTHON) benchmarks/bench_extract.py

# Append a fresh entry to the memoized-service trajectory
# (BENCH_service.json): load p50/p99/rps + cache hit rate + the
# interactive-vs-bulk fairness percentiles.
bench-service:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_service.py

bench-micro:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "=== $$f ==="; $(PYTHON) $$f || exit 1; done

experiments:
	$(PYTHON) -m repro.experiments.run_all

experiments-quick:
	$(PYTHON) -m repro.experiments.run_all --quick

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks results
	find . -name __pycache__ -type d -exec rm -rf {} +
